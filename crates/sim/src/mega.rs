//! Mega-scale DCPP populations: one struct-of-arrays shard actor hosting
//! millions of (CP, device) probe pairs.
//!
//! The per-node actor path ([`crate::CpActor`]/[`crate::DeviceActor`]) is
//! built for the paper's populations (tens of CPs, one device) and spends
//! its memory on per-actor machines, timer slots, and recorder series. At
//! 10⁶ devices that layout would cost gigabytes before the first event
//! fires. The [`MegaDcppShard`] replaces it with dense parallel vectors —
//! one `u8` phase, one `u32` sequence number, one `u8` transmission count,
//! and one timer handle per pair; one `nt` register per device — and three
//! compact index-carrying events ([`SimEvent::MegaProbe`],
//! [`SimEvent::MegaReply`], [`SimEvent::MegaTimer`]). The shard samples
//! its own network delay, loss, and device processing times, so a mega run
//! needs no [`crate::NetworkActor`]: the steady-state cost is ~3 engine
//! events and zero allocations per probe cycle.
//!
//! The protocol semantics are exactly those of the reference machines
//! ([`presence_core::DcppCp`] / [`presence_core::Retransmitter`] /
//! [`presence_core::DcppDevice`]); the differential test in this module
//! drives the real machines over a hand-rolled mini-DES and asserts the
//! shard reproduces every completion instant and wait bit-for-bit.
//!
//! Recorders are streaming by construction (aggregate [`Welford`]/P²
//! accumulators, drained load windows); [`RecorderMode::Full`]
//! additionally retains the per-completion `(t, pair, wait)` log for
//! differential testing.

use crate::actor_set::PresenceSim;
use crate::event::SimEvent;
use crate::recorder::RecorderMode;
use presence_core::{CpStats, DcppConfig};
use presence_des::{
    Actor, ActorId, Context, EventHandle, QueueProfile, RegionSim, SimDuration, SimTime,
    Simulation, StreamRng,
};
use presence_stats::{JumpingWindowRate, P2Quantile, Welford};
use serde::{Deserialize, Serialize};

/// Pair phases (dense `u8` instead of an enum so the phase vector packs).
const PROBING: u8 = 0;
const SLEEPING: u8 = 1;
const STOPPED: u8 = 2;

/// A complete description of one mega-scale DCPP run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MegaConfig {
    /// Number of devices.
    pub devices: u32,
    /// Number of control points (metadata only: pair dynamics are
    /// independent of which CP owns a pair, so `cps` partitions pairs for
    /// reporting without per-CP state).
    pub cps: u32,
    /// Watching CPs per device; total pairs = `devices ·
    /// watchers_per_device`.
    pub watchers_per_device: u32,
    /// The DCPP protocol constants shared by every pair.
    pub dcpp: DcppConfig,
    /// Uniform one-way network delay bounds (seconds).
    pub net_delay: (f64, f64),
    /// Independent per-transmission loss probability (each direction).
    pub loss: f64,
    /// Uniform device processing-time bounds (seconds).
    pub processing: (f64, f64),
    /// Stagger window for initial pair wakes (seconds).
    pub join_stagger: f64,
    /// Width of the aggregate load windows (seconds).
    pub load_window: f64,
    /// Root seed.
    pub seed: u64,
    /// Virtual run length (seconds).
    pub duration: f64,
}

impl MegaConfig {
    /// Paper-constant defaults at the given scale: DCPP §5 timing, no loss,
    /// 1–20 ms processing (`C_max = 20 ms`), and 0.2–1 ms one-way delay —
    /// the LAN regime the paper's `TOF = 2·RTT_max + C_max = 22 ms`
    /// derivation assumes. (Delays beyond ~1 ms each way make replies
    /// routinely overtake `TOF` and every cycle pays a spurious
    /// retransmission.)
    #[must_use]
    pub fn defaults(devices: u32, cps: u32, duration: f64, seed: u64) -> Self {
        Self {
            devices,
            cps,
            watchers_per_device: 1,
            dcpp: DcppConfig::paper_default(),
            net_delay: (0.0002, 0.001),
            loss: 0.0,
            processing: (0.001, 0.020),
            join_stagger: 1.0,
            load_window: 1.0,
            seed,
            duration,
        }
    }

    /// Total (CP, device) pairs.
    #[must_use]
    pub fn pairs(&self) -> u32 {
        self.devices * self.watchers_per_device
    }

    /// Checks the structural invariants a runnable configuration must
    /// satisfy.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn validate(&self) {
        assert!(self.devices > 0, "need at least one device");
        assert!(self.cps > 0, "need at least one CP");
        assert!(self.watchers_per_device > 0, "need at least one watcher");
        let pairs = u64::from(self.devices) * u64::from(self.watchers_per_device);
        assert!(pairs <= u64::from(u32::MAX), "pair count overflows u32");
        assert!(self.duration > 0.0, "duration must be positive");
        assert!((0.0..1.0).contains(&self.loss), "loss must be in [0, 1)");
        assert!(
            self.net_delay.0 <= self.net_delay.1 && self.net_delay.0 >= 0.0,
            "bad delay bounds"
        );
        assert!(
            self.processing.0 <= self.processing.1 && self.processing.0 >= 0.0,
            "bad processing bounds"
        );
        assert!(self.join_stagger >= 0.0, "negative join stagger");
        assert!(
            self.load_window > 0.0 && self.load_window.is_finite(),
            "bad load window"
        );
    }
}

/// A named, serialisable mega-scenario definition (the `catalog/mega/`
/// file format).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MegaSpec {
    /// Unique scenario name (the catalog file stem).
    pub name: String,
    /// One-line description of what the scenario exercises.
    pub description: String,
    /// The run configuration.
    pub config: MegaConfig,
}

/// The built-in mega-scenario catalog, shipped as JSON under
/// `catalog/mega/` and pinned by the scenario-lab test suite.
#[must_use]
pub fn mega_catalog() -> Vec<MegaSpec> {
    vec![
        MegaSpec {
            name: "mega-ci".into(),
            description: "100k devices / 1k CPs, lossless — the bounded-RSS CI smoke scale".into(),
            config: MegaConfig::defaults(100_000, 1_000, 5.0, 606),
        },
        MegaSpec {
            name: "mega-1m".into(),
            description: "1M devices / 10k CPs, lossless — the headline mega-population run".into(),
            config: MegaConfig::defaults(1_000_000, 10_000, 5.0, 601),
        },
        MegaSpec {
            name: "mega-1m-lossy".into(),
            description: "1M devices / 10k CPs under 5% independent loss".into(),
            config: MegaConfig {
                loss: 0.05,
                ..MegaConfig::defaults(1_000_000, 10_000, 5.0, 602)
            },
        },
    ]
}

/// Everything a finished mega run reports: aggregate counters and
/// constant-memory summary statistics (no per-pair series at any scale).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MegaResult {
    /// Virtual seconds simulated.
    pub duration: f64,
    /// Events the engine processed.
    pub events_processed: u64,
    /// Total (CP, device) pairs.
    pub pairs: u32,
    /// Devices in the population.
    pub devices: u32,
    /// Control points in the population.
    pub cps: u32,
    /// Probes transmitted (including retransmissions), over all pairs.
    pub probes_sent: u64,
    /// Probe cycles started.
    pub cycles_started: u64,
    /// Cycles completed by an accepted reply.
    pub cycles_succeeded: u64,
    /// Cycles that exhausted all retransmissions.
    pub cycles_failed: u64,
    /// Replies discarded as stale.
    pub stale_replies: u64,
    /// Retransmissions sent.
    pub retransmissions: u64,
    /// Probes the devices answered.
    pub device_probes: u64,
    /// Pairs that declared their device absent and stopped.
    pub stopped_pairs: u64,
    /// Mean device-dictated wait over accepted replies (seconds).
    pub wait_mean: f64,
    /// Sample variance of the wait.
    pub wait_variance: f64,
    /// P² estimate of the median wait, if any reply was accepted.
    pub wait_p50: Option<f64>,
    /// P² estimate of the 99th-percentile wait.
    pub wait_p99: Option<f64>,
    /// Mean probe arrival rate per device (probes/s), over closed load
    /// windows excluding the first (warm-up) window.
    pub load_mean_per_device: f64,
}

/// The struct-of-arrays shard: every pair's protocol state in dense
/// vectors, every recorder an aggregate (see the [module docs](self)).
pub struct MegaDcppShard {
    cfg: MegaConfig,
    mode: RecorderMode,
    /// Per-pair phase: [`PROBING`], [`SLEEPING`], or [`STOPPED`].
    phase: Vec<u8>,
    /// Per-pair current cycle sequence number (`u32::MAX` before the first
    /// cycle; the first cycle wraps to 0, matching the reference machine).
    seq: Vec<u32>,
    /// Per-pair transmissions of the in-flight cycle (1 after the initial
    /// probe, as in [`presence_core::Retransmitter`]).
    transmissions: Vec<u8>,
    /// Per-pair single outstanding timer (timeout while probing, wake
    /// while sleeping). Always cancelled before replacement, so a stale
    /// timer can never fire.
    timer: Vec<Option<EventHandle>>,
    /// Per-device `nt` register (the DCPP schedule head).
    nt: Vec<SimTime>,
    stats: CpStats,
    device_probes: u64,
    wait_stats: Welford,
    wait_p50: P2Quantile,
    wait_p99: P2Quantile,
    /// Aggregate probe-arrival windows, drained into `load_acc` on the fly.
    load: JumpingWindowRate,
    load_acc: Welford,
    load_windows_seen: u64,
    /// Full-mode only: `(t, pair, wait)` per accepted reply, for the
    /// differential test. Empty under streaming.
    completions: Vec<(SimTime, u32, SimDuration)>,
}

impl MegaDcppShard {
    /// Creates a shard for `cfg`, pre-sizing every per-pair vector.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`MegaConfig::validate`]).
    #[must_use]
    pub fn new(cfg: MegaConfig, mode: RecorderMode) -> Self {
        cfg.validate();
        let pairs = cfg.pairs() as usize;
        Self {
            mode,
            phase: vec![SLEEPING; pairs],
            seq: vec![u32::MAX; pairs],
            transmissions: vec![0; pairs],
            timer: vec![None; pairs],
            nt: vec![SimTime::ZERO; cfg.devices as usize],
            stats: CpStats::default(),
            device_probes: 0,
            wait_stats: Welford::new(),
            wait_p50: P2Quantile::new(0.5),
            wait_p99: P2Quantile::new(0.99),
            load: JumpingWindowRate::new(0.0, cfg.load_window),
            load_acc: Welford::new(),
            load_windows_seen: 0,
            completions: Vec::new(),
            cfg,
        }
    }

    /// The configuration this shard runs.
    #[must_use]
    pub fn config(&self) -> &MegaConfig {
        &self.cfg
    }

    /// Full-mode completion log: `(t, pair, wait)` per accepted reply.
    #[must_use]
    pub fn completions(&self) -> &[(SimTime, u32, SimDuration)] {
        &self.completions
    }

    /// Probes the devices answered so far.
    #[must_use]
    pub fn device_probes(&self) -> u64 {
        self.device_probes
    }

    fn sample_range(rng: &mut StreamRng, lo: SimDuration, hi: SimDuration) -> SimDuration {
        if lo == hi {
            lo
        } else {
            SimDuration::from_nanos(rng.uniform(lo.as_nanos() as f64, hi.as_nanos() as f64) as u64)
        }
    }

    fn net_delay(&self, rng: &mut StreamRng) -> SimDuration {
        Self::sample_range(
            rng,
            SimDuration::from_secs_f64(self.cfg.net_delay.0),
            SimDuration::from_secs_f64(self.cfg.net_delay.1),
        )
    }

    fn processing(&self, rng: &mut StreamRng) -> SimDuration {
        Self::sample_range(
            rng,
            SimDuration::from_secs_f64(self.cfg.processing.0),
            SimDuration::from_secs_f64(self.cfg.processing.1),
        )
    }

    fn lost(&self, rng: &mut StreamRng) -> bool {
        self.cfg.loss > 0.0 && rng.bernoulli(self.cfg.loss)
    }

    /// Transmits pair `p`'s current probe: samples loss and (if delivered)
    /// the uplink delay, scheduling the device-side arrival.
    fn send_probe(&mut self, ctx: &mut Context<'_, SimEvent>, p: u32) {
        let lost = self.lost(ctx.rng());
        if !lost {
            let delay = self.net_delay(ctx.rng());
            let me = ctx.me();
            ctx.schedule_in(
                delay,
                me,
                SimEvent::MegaProbe {
                    pair: p,
                    seq: self.seq[p as usize],
                },
            );
        }
    }

    /// Starts a new probe cycle for pair `p` (mirrors
    /// [`presence_core::Retransmitter::begin_cycle`]).
    fn begin_cycle(&mut self, ctx: &mut Context<'_, SimEvent>, p: u32) {
        let i = p as usize;
        self.seq[i] = self.seq[i].wrapping_add(1);
        self.transmissions[i] = 1;
        self.phase[i] = PROBING;
        self.stats.cycles_started += 1;
        self.stats.probes_sent += 1;
        self.send_probe(ctx, p);
        let me = ctx.me();
        let handle = ctx.schedule_in(self.cfg.dcpp.cycle.tof, me, SimEvent::MegaTimer { pair: p });
        self.timer[i] = Some(handle);
    }

    /// Pair `p`'s single outstanding timer fired: a probe timeout while
    /// probing, the inter-cycle wake while sleeping.
    fn on_timer(&mut self, ctx: &mut Context<'_, SimEvent>, p: u32) {
        let i = p as usize;
        self.timer[i] = None;
        match self.phase[i] {
            SLEEPING => self.begin_cycle(ctx, p),
            PROBING => {
                if u32::from(self.transmissions[i]) > self.cfg.dcpp.cycle.max_retransmissions {
                    // Cycle exhausted: declare the device absent and stop,
                    // as DcppCp::declare_absent does.
                    self.stats.cycles_failed += 1;
                    self.phase[i] = STOPPED;
                } else {
                    self.stats.probes_sent += 1;
                    self.stats.retransmissions += 1;
                    self.send_probe(ctx, p);
                    let me = ctx.me();
                    let handle = ctx.schedule_in(
                        self.cfg.dcpp.cycle.tos,
                        me,
                        SimEvent::MegaTimer { pair: p },
                    );
                    self.timer[i] = Some(handle);
                    self.transmissions[i] += 1;
                }
            }
            _ => debug_assert!(false, "timer fired for stopped pair {p}"),
        }
    }

    /// A probe from pair `p` arrives at its device: advance the device's
    /// `nt` schedule (the [`presence_core::DcppDevice`] formula) and, if
    /// neither the reply nor its flight is lost, schedule the reply's
    /// arrival back at the CP side.
    fn on_probe_arrival(&mut self, ctx: &mut Context<'_, SimEvent>, p: u32, seq: u32) {
        let now = ctx.now();
        let d = (p / self.cfg.watchers_per_device) as usize;
        self.device_probes += 1;
        self.load.record(now.as_secs_f64());
        self.stream_closed_windows();
        // nt' = max(max(nt, now) + δ_min, now + d_min)
        let serialised = self.nt[d].max(now) + self.cfg.dcpp.delta_min;
        let per_cp_floor = now + self.cfg.dcpp.d_min;
        let nt_new = serialised.max(per_cp_floor);
        let wait = nt_new - now;
        self.nt[d] = nt_new;
        let processing = self.processing(ctx.rng());
        let lost = self.lost(ctx.rng());
        if !lost {
            let delay = self.net_delay(ctx.rng());
            let me = ctx.me();
            ctx.schedule_in(
                processing + delay,
                me,
                SimEvent::MegaReply { pair: p, seq, wait },
            );
        }
    }

    /// The device's reply for cycle `seq` arrives back at pair `p`'s CP.
    fn on_reply_arrival(
        &mut self,
        ctx: &mut Context<'_, SimEvent>,
        p: u32,
        seq: u32,
        wait: SimDuration,
    ) {
        let i = p as usize;
        if self.phase[i] == STOPPED {
            // A stopped CP ignores late replies without counting them
            // stale, as DcppCp does.
            return;
        }
        if self.phase[i] == PROBING && self.seq[i] == seq {
            self.stats.cycles_succeeded += 1;
            if let Some(handle) = self.timer[i].take() {
                ctx.cancel(handle);
            }
            self.wait_stats.push(wait.as_secs_f64());
            self.wait_p50.push(wait.as_secs_f64());
            self.wait_p99.push(wait.as_secs_f64());
            if self.mode.retains_series() {
                self.completions.push((ctx.now(), p, wait));
            }
            self.phase[i] = SLEEPING;
            let me = ctx.me();
            let handle = ctx.schedule_in(wait, me, SimEvent::MegaTimer { pair: p });
            self.timer[i] = Some(handle);
        } else {
            self.stats.stale_replies += 1;
        }
    }

    /// Folds every closed aggregate load window into the accumulator,
    /// skipping the first (warm-up) window.
    fn stream_closed_windows(&mut self) {
        let seen = &mut self.load_windows_seen;
        let acc = &mut self.load_acc;
        self.load.drain_closed(|_, rate| {
            if *seen > 0 {
                acc.push(rate);
            }
            *seen += 1;
        });
    }

    /// Builds the aggregate result as of `now`.
    fn result(&mut self, now: SimTime, events_processed: u64) -> MegaResult {
        self.load.advance_to(now.as_secs_f64());
        self.stream_closed_windows();
        let stopped_pairs = self.phase.iter().filter(|&&ph| ph == STOPPED).count() as u64;
        MegaResult {
            duration: now.as_secs_f64(),
            events_processed,
            pairs: self.cfg.pairs(),
            devices: self.cfg.devices,
            cps: self.cfg.cps,
            probes_sent: self.stats.probes_sent,
            cycles_started: self.stats.cycles_started,
            cycles_succeeded: self.stats.cycles_succeeded,
            cycles_failed: self.stats.cycles_failed,
            stale_replies: self.stats.stale_replies,
            retransmissions: self.stats.retransmissions,
            device_probes: self.device_probes,
            stopped_pairs,
            wait_mean: self.wait_stats.mean(),
            wait_variance: self.wait_stats.sample_variance(),
            wait_p50: self.wait_p50.estimate(),
            wait_p99: self.wait_p99.estimate(),
            load_mean_per_device: self.load_acc.mean() / f64::from(self.cfg.devices),
        }
    }
}

impl Actor<SimEvent> for MegaDcppShard {
    fn on_start(&mut self, ctx: &mut Context<'_, SimEvent>) {
        let stagger = self.cfg.join_stagger;
        let me = ctx.me();
        for p in 0..self.cfg.pairs() {
            let offset = if stagger > 0.0 {
                SimDuration::from_secs_f64(ctx.rng().uniform(0.0, stagger))
            } else {
                SimDuration::ZERO
            };
            let handle = ctx.schedule_in(offset, me, SimEvent::MegaTimer { pair: p });
            self.timer[p as usize] = Some(handle);
        }
    }

    fn on_event(&mut self, ctx: &mut Context<'_, SimEvent>, event: SimEvent) {
        match event {
            SimEvent::MegaProbe { pair, seq } => self.on_probe_arrival(ctx, pair, seq),
            SimEvent::MegaReply { pair, seq, wait } => self.on_reply_arrival(ctx, pair, seq, wait),
            SimEvent::MegaTimer { pair } => self.on_timer(ctx, pair),
            other => debug_assert!(false, "mega shard got unexpected event {other:?}"),
        }
    }
}

/// A built, runnable mega scenario: the shard on a calendar-queue
/// simulation.
pub struct MegaScenario {
    sim: PresenceSim,
    shard: ActorId,
    cfg: MegaConfig,
}

impl MegaScenario {
    /// Builds a mega scenario with streaming recorders (the default at
    /// this scale) on the calendar queue profile.
    #[must_use]
    pub fn build(cfg: MegaConfig) -> Self {
        Self::build_with_recorder(cfg, RecorderMode::Streaming)
    }

    /// [`MegaScenario::build`] with an explicit recorder granularity
    /// ([`RecorderMode::Full`] retains the per-completion log — intended
    /// for differential tests at small scale, not for 10⁶-pair runs).
    #[must_use]
    pub fn build_with_recorder(cfg: MegaConfig, mode: RecorderMode) -> Self {
        let mut sim: PresenceSim =
            Simulation::with_actor_set_and_profile(cfg.seed, QueueProfile::calendar());
        let shard = sim.add_member(MegaDcppShard::new(cfg, mode).into());
        Self { sim, shard, cfg }
    }

    /// The configuration this scenario was built from.
    #[must_use]
    pub fn config(&self) -> &MegaConfig {
        &self.cfg
    }

    /// The shard actor id.
    #[must_use]
    pub fn shard_actor(&self) -> ActorId {
        self.shard
    }

    /// The underlying simulation.
    pub fn sim_mut(&mut self) -> &mut PresenceSim {
        &mut self.sim
    }

    /// The shard (for inspection: completions, config).
    #[must_use]
    pub fn shard(&self) -> &MegaDcppShard {
        self.sim
            .actor::<MegaDcppShard>(self.shard)
            .expect("mega shard")
    }

    /// Runs the scenario for its configured duration.
    pub fn run(&mut self) {
        let end = SimTime::from_secs_f64(self.cfg.duration);
        self.sim.run_until(end);
    }

    /// Extracts the aggregate results accumulated so far.
    #[must_use]
    pub fn collect(&mut self) -> MegaResult {
        let now = self.sim.now();
        let events = self.sim.events_processed();
        self.sim
            .actor_mut::<MegaDcppShard>(self.shard)
            .expect("mega shard")
            .result(now, events)
    }
}

/// Builds, runs, and collects one mega spec — the `perf_report --mega` and
/// `mega_smoke` entry point.
#[must_use]
pub fn run_mega_spec(spec: &MegaSpec) -> MegaResult {
    let mut scenario = MegaScenario::build(spec.config);
    scenario.run();
    scenario.collect()
}

/// Splits `cfg`'s population into at most `shards` independent
/// sub-populations: devices (and CPs) are divided as evenly as possible,
/// with the remainder spread over the leading shards; every other field is
/// inherited. At most one shard per device, and every shard keeps at least
/// one CP.
#[must_use]
pub fn shard_configs(cfg: &MegaConfig, shards: usize) -> Vec<MegaConfig> {
    cfg.validate();
    let shards = shards.clamp(1, cfg.devices as usize) as u32;
    let (dev_base, dev_rem) = (cfg.devices / shards, cfg.devices % shards);
    let (cp_base, cp_rem) = (cfg.cps / shards, cfg.cps % shards);
    (0..shards)
        .map(|i| MegaConfig {
            devices: dev_base + u32::from(i < dev_rem),
            cps: (cp_base + u32::from(i < cp_rem)).max(1),
            ..*cfg
        })
        .collect()
}

/// Runs `cfg` as independent shards, one per region of an *isolated*
/// [`RegionSim`] — the shard-per-core path for mega populations. Shards
/// never exchange events, so the partition needs no lookahead and each
/// run is a single window per region, executed by up to `workers`
/// threads. Returns one [`MegaResult`] per shard, in shard order, each
/// carrying its own region's event count.
///
/// Determinism: shard `i` is global actor `i` in join order, so its RNG
/// stream is exactly what the same membership gets sequentially — results
/// are bit-identical at any `workers` setting, and with `shards == 1`
/// they equal a plain [`MegaScenario`] run of `cfg` byte for byte (same
/// root seed, same stream 0, same calendar queue profile).
///
/// Note this is an *explicit* scaling API: the mega catalog and
/// `run_mega_spec` stay single-shard, so their pinned results never
/// depend on `PRESENCE_REGIONS`.
///
/// # Panics
///
/// Panics if `cfg` is invalid or `workers == 0`.
#[must_use]
pub fn run_mega_sharded(cfg: &MegaConfig, shards: usize, workers: usize) -> Vec<MegaResult> {
    assert!(workers > 0, "need at least one worker");
    let configs = shard_configs(cfg, shards);
    let mut reg: RegionSim<SimEvent, crate::PresenceActorSet> =
        RegionSim::with_profile(cfg.seed, configs.len(), None, QueueProfile::calendar());
    reg.set_workers(workers);
    let ids: Vec<ActorId> = configs
        .iter()
        .enumerate()
        .map(|(i, c)| reg.add_member(i, MegaDcppShard::new(*c, RecorderMode::Streaming).into()))
        .collect();
    reg.run_until(SimTime::from_secs_f64(cfg.duration));
    let now = reg.now();
    ids.iter()
        .enumerate()
        .map(|(i, &id)| {
            let events = reg.region_events_processed(i);
            reg.actor_mut::<MegaDcppShard>(id)
                .expect("mega shard")
                .result(now, events)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(devices: u32, watchers: u32, duration: f64, seed: u64) -> MegaConfig {
        MegaConfig {
            devices,
            cps: devices.min(3),
            watchers_per_device: watchers,
            ..MegaConfig::defaults(devices, devices.min(3), duration, seed)
        }
    }

    #[test]
    fn catalog_names_unique_and_valid() {
        let specs = mega_catalog();
        assert_eq!(specs.len(), 3);
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate catalog names");
        for spec in &specs {
            spec.config.validate();
        }
    }

    #[test]
    fn spec_roundtrips_through_json() {
        for spec in mega_catalog() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: MegaSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn lone_watcher_settles_at_d_min() {
        // One CP per device: the per-CP frequency floor binds, so every
        // accepted wait is exactly d_min = 0.5 s and no cycle fails.
        let mut sc = MegaScenario::build(tiny(100, 1, 5.0, 7));
        sc.run();
        let r = sc.collect();
        assert_eq!(r.cycles_failed, 0);
        assert_eq!(r.stopped_pairs, 0);
        assert_eq!(r.stale_replies, 0);
        assert!(r.cycles_succeeded > 500, "cycles {}", r.cycles_succeeded);
        assert!(
            (r.wait_mean - 0.5).abs() < 0.05,
            "wait mean {} (expected d_min)",
            r.wait_mean
        );
        // d_min waits → ~2 probes/s/device in steady state.
        assert!(
            (r.load_mean_per_device - 2.0).abs() < 0.5,
            "load {} probes/s/device",
            r.load_mean_per_device
        );
    }

    #[test]
    fn crowded_device_serialises_at_delta_min() {
        // 10 watchers per device: backlog 10·δ_min = 1 s exceeds d_min, so
        // the device budget binds and each pair waits ≈ 1 s.
        let mut sc = MegaScenario::build(tiny(20, 10, 10.0, 11));
        sc.run();
        let r = sc.collect();
        assert_eq!(r.cycles_failed, 0);
        assert!(
            (r.wait_mean - 1.0).abs() < 0.1,
            "wait mean {} (expected k·δ_min)",
            r.wait_mean
        );
        // The device load saturates at L_nom = 1/δ_min = 10 probes/s.
        assert!(
            (r.load_mean_per_device - 10.0).abs() < 1.5,
            "load {} probes/s/device",
            r.load_mean_per_device
        );
    }

    #[test]
    fn heavy_loss_stops_pairs() {
        let cfg = MegaConfig {
            loss: 0.9,
            ..tiny(200, 1, 5.0, 13)
        };
        let mut sc = MegaScenario::build(cfg);
        sc.run();
        let r = sc.collect();
        assert!(r.retransmissions > 0, "no retransmissions under 90% loss");
        assert!(r.cycles_failed > 0, "no failures under 90% loss");
        assert!(r.stopped_pairs > 0, "no pair stopped");
        assert_eq!(r.cycles_failed, r.stopped_pairs, "each pair fails once");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let cfg = MegaConfig {
            loss: 0.1,
            ..tiny(50, 2, 3.0, 42)
        };
        let run = |cfg| {
            let mut sc = MegaScenario::build(cfg);
            sc.run();
            sc.collect()
        };
        let a = run(cfg);
        let b = run(cfg);
        assert_eq!(a, b, "same seed must replay exactly");
        let c = run(MegaConfig { seed: 43, ..cfg });
        assert_ne!(a.device_probes, c.device_probes, "different seeds diverge");
    }

    #[test]
    fn streaming_and_full_agree() {
        let cfg = MegaConfig {
            loss: 0.05,
            ..tiny(30, 2, 3.0, 5)
        };
        let mut full = MegaScenario::build_with_recorder(cfg, RecorderMode::Full);
        full.run();
        assert!(!full.shard().completions().is_empty());
        let rf = full.collect();
        let mut streaming = MegaScenario::build(cfg);
        streaming.run();
        assert!(streaming.shard().completions().is_empty());
        let rs = streaming.collect();
        assert_eq!(rf, rs, "recorder mode must not perturb the trajectory");
    }

    /// The differential battery: a hand-rolled mini-DES drives the *real*
    /// protocol machines (`DcppCp` over `Retransmitter`, `DcppDevice`) with
    /// the same constant delays and zero loss, and the shard must
    /// reproduce every completion instant, wait, and counter exactly.
    mod differential {
        use super::*;
        use presence_core::{
            CpAction, CpId, DcppCp, DcppDevice, DeviceId, Prober, Reply, ReplyBody, TimerToken,
        };
        use std::collections::{BinaryHeap, HashMap, HashSet};

        const DELAY: f64 = 0.005;
        const PROC: f64 = 0.002;

        #[derive(Debug)]
        enum RefEvent {
            Wake(u32, TimerToken),
            ProbeArrive(u32, presence_core::Probe),
            ReplyArrive(u32, Reply),
            Start(u32),
        }

        /// Reference completions per pair: `(t_nanos, wait_nanos)`.
        fn reference_run(
            devices: u32,
            watchers: u32,
            duration: f64,
            cfg: DcppConfig,
            delay_secs: f64,
            proc_secs: f64,
        ) -> (Vec<Vec<(u64, u64)>>, u64, CpStats) {
            let pairs = devices * watchers;
            let mut cps: Vec<DcppCp> = (0..pairs).map(|p| DcppCp::new(CpId(p), cfg)).collect();
            let mut devs: Vec<DcppDevice> = (0..devices)
                .map(|d| DcppDevice::new(DeviceId(d), cfg))
                .collect();
            // (time, seq) min-heap with FIFO ties — the engine's order.
            let mut heap: BinaryHeap<std::cmp::Reverse<(SimTime, u64)>> = BinaryHeap::new();
            let mut payloads: HashMap<u64, RefEvent> = HashMap::new();
            let mut next_seq = 0u64;
            let mut live_timers: HashSet<(u32, TimerToken)> = HashSet::new();
            let mut completions: Vec<Vec<(u64, u64)>> = vec![Vec::new(); pairs as usize];
            let delay = SimDuration::from_secs_f64(delay_secs);
            let proc = SimDuration::from_secs_f64(proc_secs);
            let end = SimTime::from_secs_f64(duration);

            let push = |heap: &mut BinaryHeap<std::cmp::Reverse<(SimTime, u64)>>,
                        payloads: &mut HashMap<u64, RefEvent>,
                        next_seq: &mut u64,
                        at: SimTime,
                        ev: RefEvent| {
                heap.push(std::cmp::Reverse((at, *next_seq)));
                payloads.insert(*next_seq, ev);
                *next_seq += 1;
            };

            for p in 0..pairs {
                push(
                    &mut heap,
                    &mut payloads,
                    &mut next_seq,
                    SimTime::ZERO,
                    RefEvent::Start(p),
                );
            }

            let mut out: Vec<CpAction> = Vec::new();
            while let Some(std::cmp::Reverse((now, seq))) = heap.pop() {
                if now > end {
                    break;
                }
                let ev = payloads.remove(&seq).expect("payload");
                // Which pair's actions we are about to execute.
                let pair = match &ev {
                    RefEvent::Wake(p, _)
                    | RefEvent::ProbeArrive(p, _)
                    | RefEvent::ReplyArrive(p, _)
                    | RefEvent::Start(p) => *p,
                };
                out.clear();
                match ev {
                    RefEvent::Start(p) => {
                        cps[p as usize].start(now, &mut out);
                    }
                    RefEvent::Wake(p, token) => {
                        if !live_timers.remove(&(p, token)) {
                            continue; // cancelled timer
                        }
                        cps[p as usize].on_timer(now, token, &mut out);
                    }
                    RefEvent::ProbeArrive(p, probe) => {
                        let d = (p / watchers) as usize;
                        let reply = devs[d].on_probe(now, probe);
                        push(
                            &mut heap,
                            &mut payloads,
                            &mut next_seq,
                            now + proc + delay,
                            RefEvent::ReplyArrive(p, reply),
                        );
                    }
                    RefEvent::ReplyArrive(p, reply) => {
                        let before = cps[p as usize].stats().cycles_succeeded;
                        cps[p as usize].on_reply(now, &reply, &mut out);
                        if cps[p as usize].stats().cycles_succeeded > before {
                            let ReplyBody::Dcpp { wait } = reply.body else {
                                panic!("non-DCPP reply");
                            };
                            completions[p as usize].push((now.as_nanos(), wait.as_nanos()));
                        }
                    }
                }
                for action in out.drain(..) {
                    match action {
                        CpAction::SendProbe(probe) => push(
                            &mut heap,
                            &mut payloads,
                            &mut next_seq,
                            now + delay,
                            RefEvent::ProbeArrive(pair, probe),
                        ),
                        CpAction::StartTimer { token, after } => {
                            live_timers.insert((pair, token));
                            push(
                                &mut heap,
                                &mut payloads,
                                &mut next_seq,
                                now + after,
                                RefEvent::Wake(pair, token),
                            );
                        }
                        CpAction::CancelTimer { token } => {
                            live_timers.remove(&(pair, token));
                        }
                        CpAction::DeviceAbsent { .. } => {}
                    }
                }
            }

            let device_probes = devs.iter().map(DcppDevice::probes_received).sum();
            let mut stats = CpStats::default();
            for cp in &cps {
                let s = cp.stats();
                stats.probes_sent += s.probes_sent;
                stats.cycles_started += s.cycles_started;
                stats.cycles_succeeded += s.cycles_succeeded;
                stats.cycles_failed += s.cycles_failed;
                stats.stale_replies += s.stale_replies;
                stats.retransmissions += s.retransmissions;
            }
            (completions, device_probes, stats)
        }

        /// Satellite battery: randomized small topologies and reply
        /// regimes, shard vs the real protocol machines. The *fast* regime
        /// (5 ms one-way, RTT + processing < TOF) completes cycles on the
        /// first probe; the *slow* regime (12 ms one-way, RTT 24 ms + 2 ms
        /// processing > TOF 22 ms) makes every answered first probe arrive
        /// after the retransmission went out, exercising the stale-reply
        /// and retransmission paths. Constant delays and zero loss keep
        /// the reference exact (no RNG draws on either side), so every
        /// completion instant, wait, and counter must match bit-for-bit.
        fn assert_shard_matches_reference(
            devices: u32,
            watchers: u32,
            duration: f64,
            delay_secs: f64,
            seed: u64,
        ) {
            let dcpp = DcppConfig::paper_default();
            let cfg = MegaConfig {
                devices,
                cps: devices,
                watchers_per_device: watchers,
                dcpp,
                net_delay: (delay_secs, delay_secs),
                loss: 0.0,
                processing: (PROC, PROC),
                join_stagger: 0.0,
                load_window: 1.0,
                seed,
                duration,
            };
            let mut sc = MegaScenario::build_with_recorder(cfg, RecorderMode::Full);
            sc.run();
            let pairs = (devices * watchers) as usize;
            let shard_completions: Vec<Vec<(u64, u64)>> = {
                let mut per_pair = vec![Vec::new(); pairs];
                for &(t, p, w) in sc.shard().completions() {
                    per_pair[p as usize].push((t.as_nanos(), w.as_nanos()));
                }
                per_pair
            };
            let r = sc.collect();

            let (ref_completions, ref_device_probes, ref_stats) =
                reference_run(devices, watchers, duration, dcpp, delay_secs, PROC);

            assert_eq!(
                shard_completions, ref_completions,
                "per-pair (completion time, wait) sequences must match \
                 (devices={devices} watchers={watchers} delay={delay_secs})"
            );
            assert_eq!(r.device_probes, ref_device_probes);
            assert_eq!(r.probes_sent, ref_stats.probes_sent);
            assert_eq!(r.cycles_started, ref_stats.cycles_started);
            assert_eq!(r.cycles_succeeded, ref_stats.cycles_succeeded);
            assert_eq!(r.cycles_failed, ref_stats.cycles_failed);
            assert_eq!(r.stale_replies, ref_stats.stale_replies);
            assert_eq!(r.retransmissions, ref_stats.retransmissions);

            if delay_secs > 0.011 {
                // Slow regime: RTT + processing overtakes TOF, so the
                // retransmission/stale paths must actually have fired.
                assert!(r.retransmissions > 0, "timeouts never fired");
                assert!(r.stale_replies > 0, "duplicate replies never arrived");
            } else if watchers >= 2 && duration >= 5.0 {
                // Fast regime with co-watched devices: the shared nt
                // register serialises the watchers, so waits must differ.
                let waits: HashSet<u64> = shard_completions
                    .iter()
                    .flatten()
                    .map(|&(_, w)| w)
                    .collect();
                assert!(waits.len() > 1, "test topology exercised no contention");
            }
        }

        proptest::proptest! {
            #![proptest_config(proptest::prelude::ProptestConfig {
                cases: 24, ..proptest::prelude::ProptestConfig::default()
            })]

            /// Randomized topology/regime differential sweep (folds the
            /// former fixed 2×3-fast and 2×2-slow cases into one family).
            #[test]
            fn shard_matches_reference_over_random_topologies(
                devices in 1u32..=3,
                watchers in 1u32..=4,
                duration in 2.0f64..6.0,
                slow in proptest::prelude::any::<bool>(),
                seed in proptest::prelude::any::<u64>(),
            ) {
                let delay = if slow { 0.012 } else { DELAY };
                assert_shard_matches_reference(devices, watchers, duration, delay, seed);
            }
        }

        /// The original headline case, kept deterministic so the
        /// contention assertion (distinct waits under a shared device) is
        /// always exercised regardless of proptest's draws.
        #[test]
        fn shard_matches_reference_machines_exactly() {
            assert_shard_matches_reference(2, 3, 10.0, DELAY, 1);
        }

        /// The original slow-reply case: every first reply overtakes TOF.
        #[test]
        fn shard_matches_reference_with_slow_replies() {
            assert_shard_matches_reference(2, 2, 5.0, 0.012, 1);
        }
    }
}
