//! E4 — Figure 4: 18 of 20 CPs leave simultaneously.
//!
//! The paper: "Whereas in a static scenario with just two CPs, their
//! frequencies are equal, we see that in this dynamic scenario, there is
//! neither a load balance between the CPs nor a low variance." The two
//! survivors inherit the δ values the 20-CP melee drove them to, and SAPP's
//! deadband lets the inequality persist.

use super::e2_fig2::{figure_from_result, FigureReport};
use crate::{ChurnModel, Protocol, Scenario, ScenarioConfig};

/// Runs the Figure 4 workload: 20 CPs, of which 18 leave at `leave_at`;
/// CPs 0 and 1 (the paper's cp_01/cp_02) remain until `duration`.
#[must_use]
pub fn e4_fig4_burst_leave(duration: f64, leave_at: f64, seed: u64) -> FigureReport {
    assert!(leave_at < duration, "the burst must happen within the run");
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 20, duration, seed);
    cfg.churn = ChurnModel::BurstLeave {
        at: leave_at,
        leavers: 18,
    };
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let result = scenario.collect();
    // The churn driver removes the highest-indexed CPs, so 0 and 1 survive.
    figure_from_result(
        "Figure 4 (SAPP, 18 of 20 CPs leave)",
        &result,
        &[0, 1],
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survivors_keep_probing_after_burst() {
        let r = e4_fig4_burst_leave(4_000.0, 1_000.0, 3);
        for (id, series) in &r.series {
            let after: usize = series.iter().filter(|&&(t, _)| t > 1_000.0).count();
            assert!(after > 0, "cp{id} stopped probing after the burst");
        }
    }

    #[test]
    fn survivors_speed_up_after_burst() {
        // With 18 CPs gone the device is underloaded, so the survivors'
        // adapted frequency must rise above their crowded-era frequency.
        let r = e4_fig4_burst_leave(8_000.0, 1_000.0, 3);
        let (_, series) = &r.series[0];
        let before: Vec<f64> = series
            .iter()
            .filter(|&&(t, _)| t > 500.0 && t < 1_000.0)
            .map(|&(_, v)| v)
            .collect();
        let after: Vec<f64> = series
            .iter()
            .filter(|&&(t, _)| t > 6_000.0)
            .map(|&(_, v)| v)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&after) > mean(&before),
            "survivor did not speed up: before {} after {}",
            mean(&before),
            mean(&after)
        );
    }

    #[test]
    #[should_panic(expected = "within the run")]
    fn rejects_burst_after_end() {
        let _ = e4_fig4_burst_leave(100.0, 200.0, 0);
    }
}
