//! E1 — §3 steady-state study of SAPP.
//!
//! Paper setup: 1 device, k = 20 CPs, `α_inc = 2`, `α_dec = 3/2`,
//! `β = 3/2`, `L_ideal = 10⁶`, `L_nom = 10` (Δ = 10⁵), `δ_min = 0.02`,
//! `δ_max = 10`, 20 000-element buffer, three-mode network; batch-means
//! steady-state simulation at confidence interval 0.1, level 0.95.
//!
//! Paper findings this report mirrors:
//! * per-CP mean delays are wildly unequal (most ≈ 10, a few ≪ 1);
//! * some CPs have high delay variance (one: mean 8, variance ≈ 13.5);
//! * the device load is nevertheless near `L_nom = 10` with low variance;
//! * the mean network buffer length is tiny (≈ 0.004).

use crate::{Protocol, Scenario, ScenarioConfig};
use presence_stats::{jain_index, max_min_ratio, BatchMeans, BatchMeansConfig, Histogram};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of the E1 steady-state study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E1Report {
    /// Virtual seconds simulated.
    pub duration: f64,
    /// Device load point estimate (probes/s).
    pub load_mean: f64,
    /// Device load confidence half-width at 0.95.
    pub load_ci_half_width: f64,
    /// Whether the batch-means stopping rule (rel. half-width ≤ 0.1) held.
    pub load_converged: bool,
    /// Variance of the windowed load samples.
    pub load_variance: f64,
    /// Mean network buffer occupancy (paper: ≈ 0.004).
    pub mean_buffer_occupancy: f64,
    /// Per-CP mean delays, sorted ascending.
    pub cp_mean_delays: Vec<f64>,
    /// Per-CP delay variances (same order as the ids, not sorted).
    pub cp_delay_variances: Vec<f64>,
    /// Jain fairness index over per-CP mean frequencies.
    pub fairness_jain: f64,
    /// Max/min ratio of per-CP mean frequencies.
    pub frequency_spread: f64,
    /// Number of modes detected in the delay histogram (paper: 2).
    pub delay_modes: usize,
    /// The seed used.
    pub seed: u64,
}

impl fmt::Display for E1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E1 — SAPP steady state (k = 20, paper constants)")?;
        writeln!(
            f,
            "  simulated                {:.0} s (seed {})",
            self.duration, self.seed
        )?;
        writeln!(
            f,
            "  device load              {:.2} ± {:.2} probes/s (paper: ≈ L_nom = 10) {}",
            self.load_mean,
            self.load_ci_half_width,
            if self.load_converged {
                "[converged]"
            } else {
                "[NOT converged]"
            }
        )?;
        writeln!(f, "  load variance            {:.3}", self.load_variance)?;
        writeln!(
            f,
            "  mean buffer occupancy    {:.4} (paper: ≈ 0.004)",
            self.mean_buffer_occupancy
        )?;
        writeln!(
            f,
            "  CP mean delays (sorted)  {}",
            self.cp_mean_delays
                .iter()
                .map(|d| format!("{d:.2}"))
                .collect::<Vec<_>>()
                .join(" ")
        )?;
        writeln!(
            f,
            "  fairness (Jain)          {:.3}   frequency spread {:.1}× (paper: strong inequality, ≈ 25×)",
            self.fairness_jain, self.frequency_spread
        )?;
        writeln!(
            f,
            "  delay histogram modes    {} (paper: bimodal)",
            self.delay_modes
        )
    }
}

/// Runs the E1 steady-state study.
///
/// `duration` of 20 000 s matches the paper's transient horizon and is ample
/// for the load estimate to converge; shorter runs are fine for smoke tests.
#[must_use]
pub fn e1_sapp_steady_state(duration: f64, seed: u64) -> E1Report {
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 20, duration, seed);
    cfg.load_window = 5.0;
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let result = scenario.collect();

    // Batch-means over the windowed load samples, paper stopping rule.
    let bm_cfg = BatchMeansConfig {
        warmup: 20, // discard the first 100 s of windows (join transient)
        batch_size: 20,
        min_batches: 10,
        level: 0.95,
        target_relative_half_width: 0.1,
    };
    let mut bm = BatchMeans::new(bm_cfg).expect("valid batch-means config");
    for &(_, rate) in &result.load_series {
        bm.push(rate);
    }
    let ci = bm.interval();

    let mut delays = result.sorted_mean_delays();
    if delays.is_empty() {
        delays.push(f64::NAN);
    }
    let variances: Vec<f64> = result
        .active_cps()
        .iter()
        .map(|c| c.delay_variance)
        .collect();

    let mut hist = Histogram::new(0.0, 10.5, 21);
    hist.extend(delays.iter().copied());

    let freqs: Vec<f64> = result
        .active_cps()
        .iter()
        .map(|c| c.mean_frequency)
        .collect();

    E1Report {
        duration: result.duration,
        load_mean: bm.mean(),
        load_ci_half_width: ci.half_width,
        load_converged: bm.is_converged(),
        load_variance: bm.observation_variance(),
        mean_buffer_occupancy: result.mean_buffer_occupancy.unwrap_or(f64::NAN),
        cp_mean_delays: delays,
        cp_delay_variances: variances,
        fairness_jain: jain_index(&freqs),
        frequency_spread: max_min_ratio(&freqs),
        delay_modes: hist.mode_count(),
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_holds_on_short_run() {
        let r = e1_sapp_steady_state(3_000.0, 7);
        // Device load near L_nom despite CP-side chaos.
        assert!(
            r.load_mean > 5.0 && r.load_mean < 20.0,
            "load {}",
            r.load_mean
        );
        // Buffer almost always empty.
        assert!(
            r.mean_buffer_occupancy < 0.5,
            "buffer occupancy {}",
            r.mean_buffer_occupancy
        );
        assert_eq!(r.cp_mean_delays.len(), 20);
        // Sorted ascending.
        for w in r.cp_mean_delays.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!(r.load_converged, "batch means should converge in 3000 s");
    }

    #[test]
    fn e1_renders() {
        let r = e1_sapp_steady_state(500.0, 1);
        let text = r.to_string();
        assert!(text.contains("E1"));
        assert!(text.contains("device load"));
    }
}
