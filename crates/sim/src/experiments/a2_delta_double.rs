//! A2 — the §2 device-side load-control knob.
//!
//! "If the device finds that it is getting too many probes, it can, say,
//! double its value of Δ. As a consequence, the CPs will consider the
//! device more busy and adapt their respective probing frequencies
//! accordingly. The probe load of the device will, in this example,
//! eventually drop to one half of its previous value."
//!
//! This ablation doubles Δ mid-run and measures the device load before and
//! after. Note the paper's "one half" is the idealised limit: with the
//! dead band `[L_ideal/β, β·L_ideal]` the CPs only slow down until the
//! (doubled) experienced load re-enters the band, so the settled ratio
//! lies in `[1/2, 1)` — halving is the bound, not the fixed point.

use crate::{Protocol, Scenario, ScenarioConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of the Δ-doubling experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A2Report {
    /// When Δ was doubled (seconds).
    pub double_at: f64,
    /// Mean load over the settled window before the doubling.
    pub load_before: f64,
    /// Mean load over the settled window after the doubling.
    pub load_after: f64,
    /// `load_after / load_before` (paper's prediction: ≈ 0.5).
    pub ratio: f64,
    /// Full `(window_start, probes_per_second)` series.
    pub load_series: Vec<(f64, f64)>,
    /// Seconds simulated.
    pub duration: f64,
    /// Seed used.
    pub seed: u64,
}

impl fmt::Display for A2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "A2 — SAPP device Δ-doubling at t = {:.0} s (seed {})",
            self.double_at, self.seed
        )?;
        writeln!(f, "  load before   {:.2} probes/s", self.load_before)?;
        writeln!(f, "  load after    {:.2} probes/s", self.load_after)?;
        writeln!(
            f,
            "  ratio         {:.2} (paper: -> 0.5; dead band admits [0.5, 1))",
            self.ratio
        )
    }
}

/// Runs the Δ-doubling experiment: SAPP with `k` CPs, Δ doubles at
/// `duration/2`.
#[must_use]
pub fn a2_delta_doubling(k: u32, duration: f64, seed: u64) -> A2Report {
    let double_at = duration / 2.0;
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), k, duration, seed);
    cfg.load_window = 5.0;
    let mut scenario = Scenario::build(cfg);
    scenario.double_delta_at(double_at);
    scenario.run();
    let result = scenario.collect();

    // Settled windows: skip the first quarter (join transient) before the
    // doubling, and the first quarter after it (adaptation transient).
    let before: Vec<f64> = result
        .load_series
        .iter()
        .filter(|&&(t, _)| t > double_at * 0.5 && t < double_at)
        .map(|&(_, v)| v)
        .collect();
    let settle = double_at + (duration - double_at) * 0.5;
    let after: Vec<f64> = result
        .load_series
        .iter()
        .filter(|&&(t, _)| t > settle)
        .map(|&(_, v)| v)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let (lb, la) = (mean(&before), mean(&after));

    A2Report {
        double_at,
        load_before: lb,
        load_after: la,
        ratio: la / lb,
        load_series: result.load_series,
        duration: result.duration,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a2_doubling_halves_the_load() {
        let r = a2_delta_doubling(20, 8_000.0, 3);
        // The load must drop materially, and never below the paper's
        // idealised halving (modulo estimation noise).
        assert!(
            r.ratio > 0.35 && r.ratio < 0.9,
            "load ratio {} outside the dead-band-admissible range (before {}, after {})",
            r.ratio,
            r.load_before,
            r.load_after
        );
        assert!(r.load_after < r.load_before, "doubling Δ must reduce load");
    }

    #[test]
    fn a2_renders() {
        let r = a2_delta_doubling(5, 600.0, 1);
        assert!(r.to_string().contains("A2"));
    }
}
