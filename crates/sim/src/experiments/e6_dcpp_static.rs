//! E6 — §5's static-case claim for DCPP.
//!
//! "Due to its deterministic nature, the protocol ensures that once a
//! situation is reached where the number of probing CPs does not change,
//! the device has a probe load of `L_nom`, and the probe frequency is
//! nearly the same for all CPs."
//!
//! This preset sweeps the static population `k` and verifies both halves:
//! load ≈ `min(k·f_max, L_nom)` (for small `k` the per-CP cap binds) and
//! Jain fairness ≈ 1.

use crate::{Protocol, Scenario, ScenarioConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One population point of the sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct E6Row {
    /// Static CP population.
    pub k: u32,
    /// Measured device load (probes/s).
    pub load: f64,
    /// The theoretical load `min(k·f_max, L_nom)`.
    pub expected_load: f64,
    /// Jain fairness index over per-CP frequencies.
    pub fairness_jain: f64,
    /// Max/min per-CP frequency ratio.
    pub frequency_spread: f64,
    /// Mean per-CP probing frequency.
    pub mean_cp_frequency: f64,
}

/// The full sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E6Report {
    /// One row per population size.
    pub rows: Vec<E6Row>,
    /// Seconds simulated per point.
    pub duration: f64,
    /// Seed used.
    pub seed: u64,
}

impl fmt::Display for E6Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E6 — DCPP static fairness & load cap ({:.0} s per point, seed {})",
            self.duration, self.seed
        )?;
        writeln!(
            f,
            "  {:>4} {:>10} {:>10} {:>8} {:>8} {:>10}",
            "k", "load", "expected", "jain", "spread", "cp freq"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>4} {:>10.2} {:>10.2} {:>8.3} {:>8.2} {:>10.3}",
                r.k,
                r.load,
                r.expected_load,
                r.fairness_jain,
                r.frequency_spread,
                r.mean_cp_frequency
            )?;
        }
        Ok(())
    }
}

/// Runs the static sweep over the given populations.
#[must_use]
pub fn e6_dcpp_static_fairness(ks: &[u32], duration: f64, seed: u64) -> E6Report {
    let dcpp = presence_core::DcppConfig::paper_default();
    let l_nom = dcpp.l_nom();
    let f_max = dcpp.f_max();
    let mut rows = Vec::with_capacity(ks.len());
    for &k in ks {
        let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), k, duration, seed);
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let result = scenario.collect();
        let freqs: Vec<f64> = result
            .active_cps()
            .iter()
            .map(|c| c.mean_frequency)
            .collect();
        let mean_freq = freqs.iter().sum::<f64>() / freqs.len().max(1) as f64;
        rows.push(E6Row {
            k,
            load: result.load_mean,
            expected_load: (f64::from(k) * f_max).min(l_nom),
            fairness_jain: result.fairness_jain,
            frequency_spread: result.frequency_spread(),
            mean_cp_frequency: mean_freq,
        });
    }
    E6Report {
        rows,
        duration,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_load_matches_theory_and_is_fair() {
        let r = e6_dcpp_static_fairness(&[1, 2, 5, 20], 400.0, 3);
        for row in &r.rows {
            assert!(
                (row.load - row.expected_load).abs() / row.expected_load < 0.25,
                "k={}: load {} vs expected {}",
                row.k,
                row.load,
                row.expected_load
            );
            assert!(
                row.fairness_jain > 0.98,
                "k={}: DCPP must be fair, jain {}",
                row.k,
                row.fairness_jain
            );
        }
        // The per-CP frequency decreases once the device budget saturates.
        let f5 = r.rows[2].mean_cp_frequency;
        let f20 = r.rows[3].mean_cp_frequency;
        assert!(f20 < f5, "per-CP frequency must drop with k: {f5} -> {f20}");
    }

    #[test]
    fn e6_renders_table() {
        let r = e6_dcpp_static_fairness(&[1, 2], 100.0, 1);
        let text = r.to_string();
        assert!(text.contains("E6"));
        assert!(text.lines().count() >= 4);
    }
}
