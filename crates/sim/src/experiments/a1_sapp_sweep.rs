//! A1 — sensitivity of SAPP's unfairness to its adaptation constants.
//!
//! The paper fixes `α_inc = 2`, `α_dec = 3/2`, `β = 3/2` (from [1]) and
//! shows unfairness for that point. This ablation sweeps the three
//! constants to check whether the pathology is intrinsic to the
//! multiplicative-adaptation design (as the paper's §3 analysis argues) or
//! an artefact of one parameter choice.

use crate::{ParamSweep, Protocol, Scenario, ScenarioConfig};
use presence_core::{SappConfig, SappDeviceConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One parameter point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct A1Cell {
    /// Delay growth factor.
    pub alpha_inc: f64,
    /// Delay shrink factor.
    pub alpha_dec: f64,
    /// Dead-band width.
    pub beta: f64,
    /// Jain fairness over per-CP frequencies.
    pub fairness_jain: f64,
    /// Max/min frequency ratio.
    pub frequency_spread: f64,
    /// Mean device load.
    pub load_mean: f64,
}

/// The full sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A1Report {
    /// All parameter points evaluated.
    pub cells: Vec<A1Cell>,
    /// CP population used.
    pub k: u32,
    /// Seconds simulated per cell.
    pub duration: f64,
    /// Seed used.
    pub seed: u64,
}

impl fmt::Display for A1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "A1 — SAPP parameter sweep (k = {}, {:.0} s per cell, seed {})",
            self.k, self.duration, self.seed
        )?;
        writeln!(
            f,
            "  {:>6} {:>6} {:>5} {:>7} {:>8} {:>8}",
            "α_inc", "α_dec", "β", "jain", "spread", "load"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "  {:>6.2} {:>6.2} {:>5.2} {:>7.3} {:>8.2} {:>8.2}",
                c.alpha_inc, c.alpha_dec, c.beta, c.fairness_jain, c.frequency_spread, c.load_mean
            )?;
        }
        Ok(())
    }
}

/// Runs the sweep over a small grid around the paper's point, using
/// `PRESENCE_JOBS` workers (see [`crate::parallel`]).
#[must_use]
pub fn a1_sapp_param_sweep(k: u32, duration: f64, seed: u64) -> A1Report {
    a1_sapp_param_sweep_jobs(k, duration, seed, ParamSweep::new().jobs())
}

/// [`a1_sapp_param_sweep`] with an explicit worker count (the `--jobs`
/// flag). Every `(cell, seed)` grid point is an independent simulation, so
/// the pool fans them out; the report's cell order is the serial nested
/// loop's order regardless of `jobs`.
#[must_use]
pub fn a1_sapp_param_sweep_jobs(k: u32, duration: f64, seed: u64, jobs: usize) -> A1Report {
    let mut grid = Vec::with_capacity(27);
    for &alpha_inc in &[1.5, 2.0, 3.0] {
        for &alpha_dec in &[1.25, 1.5, 2.0] {
            for &beta in &[1.25, 1.5, 2.0] {
                grid.push((alpha_inc, alpha_dec, beta));
            }
        }
    }
    let groups =
        ParamSweep::with_jobs(jobs).run(&grid, &[seed], |&(alpha_inc, alpha_dec, beta), seed| {
            let cp = SappConfig {
                alpha_inc,
                alpha_dec,
                beta,
                ..SappConfig::paper_default()
            };
            let protocol = Protocol::Sapp {
                cp,
                device: SappDeviceConfig::paper_default(),
            };
            let cfg = ScenarioConfig::paper_defaults(protocol, k, duration, seed);
            let mut scenario = Scenario::build(cfg);
            scenario.run();
            let result = scenario.collect();
            A1Cell {
                alpha_inc,
                alpha_dec,
                beta,
                fairness_jain: result.fairness_jain,
                frequency_spread: result.frequency_spread(),
                load_mean: result.load_mean,
            }
        });
    A1Report {
        cells: groups.into_iter().flatten().collect(),
        k,
        duration,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_covers_the_grid() {
        let r = a1_sapp_param_sweep(3, 150.0, 1);
        assert_eq!(r.cells.len(), 27);
        for c in &r.cells {
            assert!(c.load_mean.is_finite());
            assert!(c.fairness_jain.is_finite());
        }
    }

    #[test]
    fn a1_renders() {
        let r = a1_sapp_param_sweep(2, 60.0, 1);
        assert!(r.to_string().contains("A1"));
    }

    #[test]
    fn a1_worker_count_does_not_change_cells() {
        let serial = a1_sapp_param_sweep_jobs(2, 60.0, 3, 1);
        let parallel = a1_sapp_param_sweep_jobs(2, 60.0, 3, 4);
        let bits = |r: &A1Report| {
            r.cells
                .iter()
                .map(|c| {
                    (
                        c.alpha_inc.to_bits(),
                        c.alpha_dec.to_bits(),
                        c.beta.to_bits(),
                        c.fairness_jain.to_bits(),
                        c.frequency_spread.to_bits(),
                        c.load_mean.to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&serial), bits(&parallel));
    }
}
