//! A7 — sensitivity to SAPP's *unstated* initial delay (extension).
//!
//! The paper never says what δ a CP starts with. That choice decides the
//! whole transient: greedy joiners (δ_min) cause a thundering herd that
//! cascades upward; conservative joiners (δ_max) trickle down. Because
//! SAPP's dead band freezes whatever configuration the transient produces
//! (see EXPERIMENTS.md's E1 note), the initial δ materially shifts the
//! steady state — this ablation quantifies how much, which is also our
//! best explanation for the magnitude gap between our E1 and the paper's.

use crate::{Protocol, Scenario, ScenarioConfig};
use presence_core::{SappConfig, SappDeviceConfig};
use presence_des::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One initial-delay choice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A7Row {
    /// The initial δ (seconds).
    pub initial_delay: f64,
    /// Human label for the choice.
    pub label: String,
    /// Mean device load.
    pub load_mean: f64,
    /// Jain fairness index.
    pub fairness_jain: f64,
    /// Max/min frequency ratio.
    pub frequency_spread: f64,
    /// Per-CP mean delays, sorted.
    pub mean_delays: Vec<f64>,
}

/// The initial-delay sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A7Report {
    /// One row per starting point.
    pub rows: Vec<A7Row>,
    /// CP population.
    pub k: u32,
    /// Seconds simulated per row.
    pub duration: f64,
    /// Seed used.
    pub seed: u64,
}

impl fmt::Display for A7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "A7 — SAPP sensitivity to the (unstated) initial δ (k = {}, {:.0} s, seed {})",
            self.k, self.duration, self.seed
        )?;
        writeln!(
            f,
            "  {:<22} {:>8} {:>7} {:>8}  delays (sorted)",
            "initial δ", "load", "jain", "spread"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<22} {:>8.2} {:>7.3} {:>7.1}×  {}",
                r.label,
                r.load_mean,
                r.fairness_jain,
                r.frequency_spread,
                r.mean_delays
                    .iter()
                    .map(|d| format!("{d:.2}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            )?;
        }
        Ok(())
    }
}

/// Runs the sweep over greedy (δ_min), middle (1 s), and conservative
/// (δ_max) starting delays.
#[must_use]
pub fn a7_initial_delay(k: u32, duration: f64, seed: u64) -> A7Report {
    let choices: [(f64, &str); 3] = [
        (0.02, "greedy (δ_min = 0.02)"),
        (1.0, "middle (1 s)"),
        (10.0, "conservative (δ_max)"),
    ];
    let mut rows = Vec::new();
    for (initial, label) in choices {
        let cp = SappConfig {
            initial_delay: SimDuration::from_secs_f64(initial),
            ..SappConfig::paper_default()
        };
        let protocol = Protocol::Sapp {
            cp,
            device: SappDeviceConfig::paper_default(),
        };
        let cfg = ScenarioConfig::paper_defaults(protocol, k, duration, seed);
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let result = scenario.collect();
        rows.push(A7Row {
            initial_delay: initial,
            label: label.to_string(),
            load_mean: result.load_mean,
            fairness_jain: result.fairness_jain,
            frequency_spread: result.frequency_spread(),
            mean_delays: result.sorted_mean_delays(),
        });
    }
    A7Report {
        rows,
        k,
        duration,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a7_all_starting_points_stay_near_budget() {
        let r = a7_initial_delay(10, 2_000.0, 3);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(
                row.load_mean > 3.0 && row.load_mean < 25.0,
                "{}: load {}",
                row.label,
                row.load_mean
            );
            assert_eq!(row.mean_delays.len(), 10);
        }
    }

    #[test]
    fn a7_initial_delay_changes_steady_state() {
        // The frozen configurations differ between greedy and conservative
        // starts — the dead band remembers the transient.
        let r = a7_initial_delay(10, 2_000.0, 3);
        let greedy = &r.rows[0].mean_delays;
        let conservative = &r.rows[2].mean_delays;
        let diff: f64 = greedy
            .iter()
            .zip(conservative)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff > 0.5,
            "steady states identical across initial δ (diff {diff})"
        );
    }

    #[test]
    fn a7_renders() {
        let r = a7_initial_delay(3, 300.0, 1);
        assert!(r.to_string().contains("A7"));
    }
}
