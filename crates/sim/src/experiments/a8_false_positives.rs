//! A8 — false absence verdicts under loss (extension).
//!
//! The bounded-retransmission design (Fig. 1) declares a device absent
//! after 4 unanswered probes. Under i.i.d. loss with probability `p` (drop
//! applied independently to each probe and each reply), a cycle falsely
//! fails with probability
//!
//! ```text
//! P(false) = (1 − (1 − p)²)⁴  =  q⁴,   q = probability one round trip dies
//! ```
//!
//! since each of the 4 transmissions needs its probe *and* its reply to
//! survive. Bursty loss breaks the independence and inflates the rate by
//! orders of magnitude — which is why the paper's §5 expects losses "in
//! bursts" to be the operative regime. This experiment measures both and
//! checks the i.i.d. case against the closed form.

use crate::{LossKind, Protocol, Scenario, ScenarioConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One loss configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct A8Row {
    /// Loss probability per message.
    pub loss: f64,
    /// Whether the loss is bursty (Gilbert–Elliott).
    pub bursty: bool,
    /// Probe cycles completed (successfully) across all CPs.
    pub cycles: u64,
    /// False absence verdicts observed.
    pub false_verdicts: u64,
    /// Measured false-verdict rate per cycle.
    pub measured_rate: f64,
    /// The i.i.d. closed form `q⁴` (NaN for bursty rows, where it does not
    /// apply).
    pub analytic_rate: f64,
}

/// The false-positive study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A8Report {
    /// One row per loss setting.
    pub rows: Vec<A8Row>,
    /// CP population.
    pub k: u32,
    /// Virtual seconds per row.
    pub duration: f64,
    /// Seed used.
    pub seed: u64,
}

impl fmt::Display for A8Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "A8 — false absence verdicts under loss (DCPP, k = {}, {:.0} s per row, seed {})",
            self.k, self.duration, self.seed
        )?;
        writeln!(
            f,
            "  {:>6} {:>7} {:>9} {:>7} {:>12} {:>12}",
            "loss", "bursty", "cycles", "false", "measured", "analytic q⁴"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>5.0}% {:>7} {:>9} {:>7} {:>12.2e} {:>12}",
                r.loss * 100.0,
                r.bursty,
                r.cycles,
                r.false_verdicts,
                r.measured_rate,
                if r.analytic_rate.is_nan() {
                    "n/a".to_string()
                } else {
                    format!("{:.2e}", r.analytic_rate)
                }
            )?;
        }
        writeln!(
            f,
            "  (bursty loss voids the independence assumption — rates explode)"
        )
    }
}

fn run_one(loss: LossKind, loss_p: f64, bursty: bool, k: u32, duration: f64, seed: u64) -> A8Row {
    // DCPP with a short d_min maximises cycles per virtual second, giving
    // the tightest estimate of the per-cycle false-verdict rate.
    let mut dcpp = presence_core::DcppConfig::paper_default();
    dcpp.delta_min = presence_des::SimDuration::from_millis(10);
    dcpp.d_min = presence_des::SimDuration::from_millis(100);
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::Dcpp { cfg: dcpp }, k, duration, seed);
    cfg.loss = loss;
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let result = scenario.collect();

    // The device never left, so every verdict is false. `cycles_failed`
    // counts them even across CP re-joins (there are none here: a stopped
    // CP stays stopped, so at most one verdict per CP).
    let cycles: u64 = result.cps.iter().map(|c| c.cycles_succeeded).sum();
    let false_verdicts: u64 = result.cps.iter().map(|c| c.cycles_failed).sum();
    let attempts = cycles + false_verdicts;
    let q = 1.0 - (1.0 - loss_p) * (1.0 - loss_p);
    A8Row {
        loss: loss_p,
        bursty,
        cycles,
        false_verdicts,
        measured_rate: false_verdicts as f64 / attempts.max(1) as f64,
        analytic_rate: if bursty { f64::NAN } else { q.powi(4) },
    }
}

/// Runs the false-positive study.
#[must_use]
pub fn a8_false_positives(k: u32, duration: f64, seed: u64) -> A8Report {
    let rows = vec![
        run_one(LossKind::None, 0.0, false, k, duration, seed),
        run_one(LossKind::Bernoulli(0.05), 0.05, false, k, duration, seed),
        run_one(LossKind::Bernoulli(0.20), 0.20, false, k, duration, seed),
        run_one(LossKind::Bursty(0.05), 0.05, true, k, duration, seed),
        run_one(LossKind::Bursty(0.20), 0.20, true, k, duration, seed),
    ];
    A8Report {
        rows,
        k,
        duration,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a8_no_loss_no_false_verdicts() {
        let r = a8_false_positives(10, 500.0, 3);
        assert_eq!(r.rows[0].false_verdicts, 0);
        assert!(r.rows[0].cycles > 1_000, "cycles {}", r.rows[0].cycles);
    }

    #[test]
    fn a8_iid_rate_matches_closed_form_at_high_loss() {
        // At p = 0.20: q = 0.36, q^4 ≈ 1.68e-2 — large enough to measure
        // in a short run.
        let r = a8_false_positives(10, 2_000.0, 3);
        let row = &r.rows[2];
        assert!(row.false_verdicts > 0, "no false verdicts at 20% loss");
        let ratio = row.measured_rate / row.analytic_rate;
        assert!(
            ratio > 0.3 && ratio < 3.0,
            "measured {:.3e} vs analytic {:.3e} (ratio {ratio})",
            row.measured_rate,
            row.analytic_rate
        );
    }

    #[test]
    fn a8_bursty_loss_is_far_worse_than_iid() {
        let r = a8_false_positives(10, 2_000.0, 3);
        let iid = &r.rows[1]; // 5% i.i.d.
        let bursty = &r.rows[3]; // 5% bursty
        assert!(
            bursty.measured_rate > 5.0 * iid.measured_rate.max(1e-9),
            "bursty {:.3e} not clearly worse than i.i.d. {:.3e}",
            bursty.measured_rate,
            iid.measured_rate
        );
    }

    #[test]
    fn a8_renders() {
        let r = a8_false_positives(3, 200.0, 1);
        assert!(r.to_string().contains("A8"));
    }
}
