//! Experiment presets — one per paper artifact.
//!
//! The paper has no numbered tables; its quantitative evaluation consists of
//! in-text steady-state numbers (§3, §5) and Figures 2–5. Each preset here
//! regenerates one of those artifacts (E1–E7) or probes a design choice the
//! paper discusses qualitatively (A1–A4). The `presence-bench` binaries are
//! thin wrappers that run a preset and print its report.
//!
//! | id | paper artifact |
//! |----|----------------|
//! | E1 | §3 steady-state: bimodal CP delays, device load ≈ `L_nom`, buffer ≈ 0.004 |
//! | E2 | Fig. 2: probe frequencies of 3 CPs over 20 000 s (starvation) |
//! | E3 | Fig. 3: 7 of 20 CPs over one minute (oscillation) |
//! | E4 | Fig. 4: 18 of 20 CPs leave at once |
//! | E5 | Fig. 5 + §5: DCPP under uniform-resample churn (load 9.7, var 20) |
//! | E6 | §5 claim: DCPP static fairness and load cap |
//! | E7 | §5 conjecture: packet loss widens DCPP join spikes |
//! | A1 | SAPP `α_inc`/`α_dec`/`β` sensitivity sweep |
//! | A2 | §2 device-side Δ-doubling load control |
//! | A3 | naive fixed-rate baseline over/underload |
//! | A4 | detection latency across protocols and baselines |
//! | A5 | (extension) device-side Δ auto-tuner under a population surge |
//! | A6 | (extension) the overlay dissemination phase the paper defers |
//! | A7 | (extension) sensitivity to SAPP's unstated initial δ |
//! | A8 | (extension) false absence verdicts under i.i.d. vs bursty loss |

mod a1_sapp_sweep;
mod a2_delta_double;
mod a3_baseline;
mod a4_detection;
mod a5_auto_tune;
mod a6_dissemination;
mod a7_initial_delay;
mod a8_false_positives;
mod e1_steady_state;
mod e2_fig2;
mod e3_fig3;
mod e4_fig4;
mod e5_fig5;
mod e6_dcpp_static;
mod e7_loss;

pub use a1_sapp_sweep::{a1_sapp_param_sweep, a1_sapp_param_sweep_jobs, A1Cell, A1Report};
pub use a2_delta_double::{a2_delta_doubling, A2Report};
pub use a3_baseline::{a3_fixed_rate_baseline, A3Report, A3Row};
pub use a4_detection::{a4_detection_latency, A4Report, A4Row};
pub use a5_auto_tune::{a5_auto_tune_surge, A5Report};
pub use a6_dissemination::{a6_dissemination, A6Arm, A6Report};
pub use a7_initial_delay::{a7_initial_delay, A7Report, A7Row};
pub use a8_false_positives::{a8_false_positives, A8Report, A8Row};
pub use e1_steady_state::{e1_sapp_steady_state, E1Report};
pub use e2_fig2::{e2_fig2_three_cps, FigureReport};
pub use e3_fig3::e3_fig3_twenty_cps_minute;
pub use e4_fig4::e4_fig4_burst_leave;
pub use e5_fig5::{e5_fig5_dcpp_churn, E5Report};
pub use e6_dcpp_static::{e6_dcpp_static_fairness, E6Report, E6Row};
pub use e7_loss::{e7_dcpp_loss_spread, E7Report, E7Row};
