//! A3 — the naive fixed-rate baseline the paper's introduction dismisses.
//!
//! "The simplest scheme one could consider is to regularly probe a device —
//! 'are you still there?'. This scheme, however, easily leads to over- or
//! underloading of devices." This preset quantifies that: fixed-rate
//! probing scales its device load linearly with the population, while SAPP
//! and DCPP hold it near `L_nom`.

use crate::{Protocol, Scenario, ScenarioConfig};
use presence_core::ProbeCycleConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One population point comparing the three protocols.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct A3Row {
    /// CP population.
    pub k: u32,
    /// Device load under fixed-rate probing (period 0.5 s).
    pub fixed_rate_load: f64,
    /// Device load under SAPP.
    pub sapp_load: f64,
    /// Device load under DCPP.
    pub dcpp_load: f64,
}

/// The population sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A3Report {
    /// One row per population.
    pub rows: Vec<A3Row>,
    /// Fixed-rate probing period used (seconds).
    pub period: f64,
    /// Seconds simulated per cell.
    pub duration: f64,
    /// Seed used.
    pub seed: u64,
}

impl fmt::Display for A3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "A3 — device load vs population: fixed-rate (T = {:.1} s) vs SAPP vs DCPP ({:.0} s per cell, seed {})",
            self.period, self.duration, self.seed
        )?;
        writeln!(
            f,
            "  {:>4} {:>12} {:>10} {:>10}",
            "k", "fixed-rate", "SAPP", "DCPP"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>4} {:>12.1} {:>10.1} {:>10.1}",
                r.k, r.fixed_rate_load, r.sapp_load, r.dcpp_load
            )?;
        }
        writeln!(
            f,
            "  (L_nom = 10 probes/s; fixed-rate grows as k/T, the adaptive protocols cap)"
        )
    }
}

fn load_of(protocol: Protocol, k: u32, duration: f64, seed: u64) -> f64 {
    let cfg = ScenarioConfig::paper_defaults(protocol, k, duration, seed);
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    scenario.collect().load_mean
}

/// Runs the baseline comparison over the given populations.
#[must_use]
pub fn a3_fixed_rate_baseline(ks: &[u32], duration: f64, seed: u64) -> A3Report {
    let period = 0.5;
    let mut rows = Vec::with_capacity(ks.len());
    for &k in ks {
        let fixed = Protocol::FixedRate {
            cycle: ProbeCycleConfig::paper_default(),
            period,
        };
        rows.push(A3Row {
            k,
            fixed_rate_load: load_of(fixed, k, duration, seed),
            sapp_load: load_of(Protocol::sapp_paper(), k, duration, seed),
            dcpp_load: load_of(Protocol::dcpp_paper(), k, duration, seed),
        });
    }
    A3Report {
        rows,
        period,
        duration,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a3_fixed_rate_grows_linearly_but_adaptive_caps() {
        let r = a3_fixed_rate_baseline(&[5, 40], 400.0, 3);
        let small = &r.rows[0];
        let large = &r.rows[1];
        // Fixed rate: load ≈ k / 0.5 = 2k.
        assert!(
            (small.fixed_rate_load - 10.0).abs() < 2.0,
            "fixed k=5: {}",
            small.fixed_rate_load
        );
        assert!(
            (large.fixed_rate_load - 80.0).abs() < 10.0,
            "fixed k=40: {}",
            large.fixed_rate_load
        );
        // DCPP pins the load at L_nom regardless.
        assert!(
            (large.dcpp_load - 10.0).abs() < 2.0,
            "dcpp k=40: {}",
            large.dcpp_load
        );
        // SAPP keeps it the same order as L_nom (not k-proportional).
        assert!(large.sapp_load < 30.0, "sapp k=40: {}", large.sapp_load);
    }

    #[test]
    fn a3_renders() {
        let r = a3_fixed_rate_baseline(&[2], 100.0, 1);
        assert!(r.to_string().contains("A3"));
    }
}
