//! E7 — §5's closing conjecture: packet loss spreads DCPP's join spikes.
//!
//! "In case of packet losses, however, which will occur in bursts due to
//! the limited capacity of devices, the load caused by new CPs will spread
//! better over time, since some CPs will only receive a reply after some
//! re-probing. We can therefore expect that in practice the peaks in the
//! device load as they appear as spikes in Fig. 5 will be a bit wider."
//!
//! This preset runs the E5 workload under increasing (bursty) loss and
//! quantifies the spikes: their height should drop and their energy spread
//! as loss grows.

use crate::{ChurnModel, LossKind, Protocol, Scenario, ScenarioConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One loss setting of the sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct E7Row {
    /// Average loss rate simulated.
    pub loss_rate: f64,
    /// Whether the loss was bursty (Gilbert–Elliott) or i.i.d.
    pub bursty: bool,
    /// Mean device load.
    pub load_mean: f64,
    /// Variance of the load samples.
    pub load_variance: f64,
    /// Largest load window (spike height).
    pub peak_load: f64,
    /// Fraction of windows above `1.5 · L_nom` (spike prevalence — rises
    /// as spikes widen even while the peak shrinks).
    pub elevated_fraction: f64,
    /// Probe retransmissions per successful cycle (the re-probing that does
    /// the spreading).
    pub retransmissions_per_cycle: f64,
}

/// The full loss sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E7Report {
    /// One row per loss configuration.
    pub rows: Vec<E7Row>,
    /// Seconds simulated per point.
    pub duration: f64,
    /// Seed used.
    pub seed: u64,
}

impl fmt::Display for E7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E7 — DCPP join-spike spreading under loss ({:.0} s per point, seed {})",
            self.duration, self.seed
        )?;
        writeln!(
            f,
            "  {:>6} {:>7} {:>8} {:>9} {:>7} {:>10} {:>12}",
            "loss", "bursty", "load", "variance", "peak", ">1.5 L_nom", "retx/cycle"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>5.0}% {:>7} {:>8.2} {:>9.1} {:>7.1} {:>9.1}% {:>12.3}",
                r.loss_rate * 100.0,
                r.bursty,
                r.load_mean,
                r.load_variance,
                r.peak_load,
                r.elevated_fraction * 100.0,
                r.retransmissions_per_cycle
            )?;
        }
        Ok(())
    }
}

fn run_one(loss: LossKind, loss_rate: f64, bursty: bool, duration: f64, seed: u64) -> E7Row {
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 60, duration, seed);
    cfg.initially_active = 20;
    cfg.churn = ChurnModel::paper_fig5();
    cfg.load_window = 2.0;
    cfg.loss = loss;
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let result = scenario.collect();

    let loads: Vec<f64> = result.load_series.iter().map(|&(_, v)| v).collect();
    let peak = loads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let elevated = loads.iter().filter(|&&v| v > 15.0).count() as f64 / loads.len().max(1) as f64;

    let (mut retx, mut cycles) = (0u64, 0u64);
    for cp in &result.cps {
        retx += cp.retransmissions;
        cycles += cp.cycles_succeeded;
    }

    E7Row {
        loss_rate,
        bursty,
        load_mean: result.load_mean,
        load_variance: result.load_variance,
        peak_load: peak,
        elevated_fraction: elevated,
        retransmissions_per_cycle: retx as f64 / cycles.max(1) as f64,
    }
}

/// Runs the loss sweep: lossless, then i.i.d. and bursty loss at rising
/// rates.
#[must_use]
pub fn e7_dcpp_loss_spread(duration: f64, seed: u64) -> E7Report {
    let rows = vec![
        run_one(LossKind::None, 0.0, false, duration, seed),
        run_one(LossKind::Bernoulli(0.01), 0.01, false, duration, seed),
        run_one(LossKind::Bernoulli(0.05), 0.05, false, duration, seed),
        run_one(LossKind::Bursty(0.05), 0.05, true, duration, seed),
        run_one(LossKind::Bursty(0.10), 0.10, true, duration, seed),
    ];
    E7Report {
        rows,
        duration,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_loss_induces_retransmissions() {
        let r = e7_dcpp_loss_spread(600.0, 17);
        let lossless = &r.rows[0];
        let lossy = &r.rows[2]; // 5% i.i.d.
        assert!(
            lossless.retransmissions_per_cycle < 0.01,
            "retransmissions without loss: {}",
            lossless.retransmissions_per_cycle
        );
        assert!(
            lossy.retransmissions_per_cycle > lossless.retransmissions_per_cycle + 0.01,
            "loss must cause re-probing"
        );
    }

    #[test]
    fn e7_load_stays_controlled_under_loss() {
        let r = e7_dcpp_loss_spread(600.0, 17);
        for row in &r.rows {
            assert!(
                row.load_mean < 15.0,
                "loss {:.0}%: load {} escaped the DCPP cap",
                row.loss_rate * 100.0,
                row.load_mean
            );
        }
    }

    #[test]
    fn e7_renders() {
        let r = e7_dcpp_loss_spread(200.0, 1);
        assert!(r.to_string().contains("E7"));
        assert_eq!(r.rows.len(), 5);
    }
}
