//! E2 — Figure 2: probe frequencies of 3 CPs over 20 000 s.
//!
//! The paper: "for three CPs […] after a short initial phase, one CP is
//! probing less and less frequent, and is not recovering from this
//! (undesired) situation. […] the remaining two CPs tend to 'stabilize'
//! their probing frequencies, [but] there remains to be a rather high
//! variance."

use crate::{ascii_chart, series_to_csv, Protocol, Scenario, ScenarioConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reproduced figure: one frequency series per CP, plus summary metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureReport {
    /// Which figure this reproduces.
    pub figure: String,
    /// Per-CP `(t, 1/δ)` series, indexed by CP id.
    pub series: Vec<(u32, Vec<(f64, f64)>)>,
    /// Mean frequency of each CP over the final quarter of the run.
    pub late_mean_frequencies: Vec<(u32, f64)>,
    /// Max/min ratio of the late mean frequencies (1 = fair).
    pub late_spread: f64,
    /// Seconds simulated.
    pub duration: f64,
    /// Seed used.
    pub seed: u64,
}

impl FigureReport {
    /// Renders every CP's series as CSV (columns `t, cp00, cp01, …`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let names: Vec<String> = self
            .series
            .iter()
            .map(|(id, _)| format!("cp{id:02}"))
            .collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let series: Vec<Vec<(f64, f64)>> = self.series.iter().map(|(_, s)| s.clone()).collect();
        series_to_csv(&name_refs, &series)
    }

    /// Renders a terminal chart of each CP's series.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        for (id, series) in &self.series {
            out.push_str(&ascii_chart(
                &format!("cp{id:02} probe frequency (1/s)"),
                series,
                72,
                10,
            ));
        }
        out
    }
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} — per-CP probe frequency over {:.0} s (seed {})",
            self.figure, self.duration, self.seed
        )?;
        for (id, freq) in &self.late_mean_frequencies {
            writeln!(f, "  cp{id:02} late mean frequency {freq:.3}/s")?;
        }
        writeln!(
            f,
            "  late frequency spread {:.1}× (1.0 = fair)",
            self.late_spread
        )
    }
}

/// Builds a figure report from a finished scenario over the chosen CPs.
pub(crate) fn figure_from_result(
    figure: &str,
    result: &crate::ScenarioResult,
    cp_ids: &[u32],
    seed: u64,
) -> FigureReport {
    let duration = result.duration;
    let late_from = duration * 0.75;
    let mut series = Vec::new();
    let mut late = Vec::new();
    for &id in cp_ids {
        let cp = result
            .cps
            .iter()
            .find(|c| c.id.0 == id)
            .unwrap_or_else(|| panic!("cp{id} missing from result"));
        series.push((id, cp.frequency_series.clone()));
        let late_samples: Vec<f64> = cp
            .frequency_series
            .iter()
            .filter(|&&(t, _)| t >= late_from)
            .map(|&(_, v)| v)
            .collect();
        let mean = if late_samples.is_empty() {
            0.0 // a starved CP may not complete a single late cycle
        } else {
            late_samples.iter().sum::<f64>() / late_samples.len() as f64
        };
        late.push((id, mean));
    }
    let freqs: Vec<f64> = late.iter().map(|&(_, v)| v).collect();
    FigureReport {
        figure: figure.to_string(),
        series,
        late_spread: presence_stats::max_min_ratio(&freqs),
        late_mean_frequencies: late,
        duration,
        seed,
    }
}

/// Runs the Figure 2 workload: SAPP, 3 CPs, paper constants.
#[must_use]
pub fn e2_fig2_three_cps(duration: f64, seed: u64) -> FigureReport {
    let cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 3, duration, seed);
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let result = scenario.collect();
    figure_from_result("Figure 2 (SAPP, 3 CPs)", &result, &[0, 1, 2], seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reproduces_divergence() {
        // Seed 3 shows the starvation divergence within 20 000 s (see the
        // EXPERIMENTS.md notes on seed sensitivity).
        let r = e2_fig2_three_cps(20_000.0, 3);
        assert_eq!(r.series.len(), 3);
        assert!(
            r.late_spread > 1.5,
            "expected unequal late frequencies, spread {}",
            r.late_spread
        );
        // Everyone probed at least sometimes.
        for (id, s) in &r.series {
            assert!(!s.is_empty(), "cp{id} has no samples");
        }
    }

    #[test]
    fn fig2_csv_and_ascii_render() {
        let r = e2_fig2_three_cps(500.0, 1);
        let csv = r.to_csv();
        assert!(csv.starts_with("t,cp00,cp01,cp02"));
        assert!(r.to_ascii().contains("cp00"));
        assert!(r.to_string().contains("Figure 2"));
    }
}
