//! E5 — Figure 5 and §5 in-text numbers: DCPP under churn.
//!
//! Paper setup: the number of active CPs is redrawn from `U{1..60}` at
//! exponentially distributed intervals with rate 0.05 (mean 20 s); no
//! packet loss; `δ_min = 0.1` (`L_nom = 10`), `d_min = 0.5` (`f_max = 2`).
//!
//! Paper findings: "the mean load of a device in steady-state is 9.7
//! probes/s, and the variance 20.0, yielding a standard deviation of
//! ≈ ±4.5"; the load shows spikes when many CPs join at once but "falls
//! off very quickly again towards L_nom = 10".

use crate::{ascii_chart, ChurnModel, Protocol, Scenario, ScenarioConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of the E5 churn study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E5Report {
    /// Mean device load (paper: 9.7 probes/s).
    pub load_mean: f64,
    /// Variance of the load samples (paper: 20.0).
    pub load_variance: f64,
    /// `(window_start, probes_per_second)` series — the Figure 5 load curve.
    pub load_series: Vec<(f64, f64)>,
    /// `(t, active CPs)` series — Figure 5's second curve.
    pub population_series: Vec<(f64, f64)>,
    /// Fraction of load windows exceeding `2 · L_nom` (spike prevalence).
    pub overload_fraction: f64,
    /// Largest load window observed.
    pub peak_load: f64,
    /// Seconds simulated.
    pub duration: f64,
    /// Seed used.
    pub seed: u64,
}

impl E5Report {
    /// Terminal rendering of both Figure 5 curves.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&ascii_chart(
            "Device load (probes/s)",
            &self.load_series,
            72,
            12,
        ));
        out.push_str(&ascii_chart(
            "#Control Points",
            &self.population_series,
            72,
            12,
        ));
        out
    }
}

impl fmt::Display for E5Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E5 — DCPP under U{{1..60}} churn @ exp(0.05) for {:.0} s (seed {})",
            self.duration, self.seed
        )?;
        writeln!(
            f,
            "  mean load       {:.2} probes/s   (paper: 9.7)",
            self.load_mean
        )?;
        writeln!(
            f,
            "  load variance   {:.1}            (paper: 20.0, σ ≈ ±4.5)",
            self.load_variance
        )?;
        writeln!(f, "  peak load       {:.1} probes/s", self.peak_load)?;
        writeln!(
            f,
            "  windows > 2·L_nom  {:.1}% (spikes decay quickly toward L_nom)",
            self.overload_fraction * 100.0
        )
    }
}

/// Runs the Figure 5 workload.
///
/// The paper plots a 30-minute window of a longer run; `duration` of
/// 3 000 s with a 2 s load window reproduces the published curve's
/// resolution.
#[must_use]
pub fn e5_fig5_dcpp_churn(duration: f64, seed: u64) -> E5Report {
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 60, duration, seed);
    cfg.initially_active = 20;
    cfg.churn = ChurnModel::paper_fig5();
    cfg.load_window = 2.0;
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let result = scenario.collect();

    let loads: Vec<f64> = result.load_series.iter().map(|&(_, v)| v).collect();
    let peak = loads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let over = loads.iter().filter(|&&v| v > 20.0).count() as f64 / loads.len().max(1) as f64;

    E5Report {
        load_mean: result.load_mean,
        load_variance: result.load_variance,
        load_series: result.load_series,
        population_series: result.population_series,
        overload_fraction: over,
        peak_load: peak,
        duration: result.duration,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_load_near_paper_value() {
        let r = e5_fig5_dcpp_churn(3_000.0, 11);
        // Paper: mean 9.7. The exact value depends on the churn draw; the
        // shape requirement is "close to L_nom from below".
        assert!(
            r.load_mean > 6.0 && r.load_mean < 12.5,
            "mean load {} too far from the paper's 9.7",
            r.load_mean
        );
        // Spiky but controlled: variance well above zero, peaks bounded.
        assert!(r.load_variance > 1.0, "variance {}", r.load_variance);
        assert!(
            r.overload_fraction < 0.2,
            "load exceeded 2·L_nom in {}% of windows",
            r.overload_fraction * 100.0
        );
    }

    #[test]
    fn e5_population_stays_in_range() {
        let r = e5_fig5_dcpp_churn(1_000.0, 5);
        for &(_, p) in &r.population_series {
            assert!((0.0..=60.0).contains(&p));
        }
        assert!(r.population_series.len() > 10, "churn too quiet");
    }

    #[test]
    fn e5_renders() {
        let r = e5_fig5_dcpp_churn(300.0, 1);
        assert!(r.to_string().contains("E5"));
        assert!(r.to_ascii().contains("Device load"));
    }
}
