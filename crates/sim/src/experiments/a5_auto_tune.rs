//! A5 — closing the device-side control loop (extension).
//!
//! §2 says a device "may change [Δ] during execution" but gives no
//! trigger. A2 tests a one-shot scripted doubling; this experiment installs
//! the closed-loop [`presence_core::AutoTuner`] and subjects the device to
//! a population *surge* (k CPs join, then 4k more join mid-run). The tuner
//! should throttle the swarm back toward the device's budget, and release
//! the throttle after the surge departs.

use crate::{ChurnModel, Protocol, Scenario, ScenarioConfig};
use presence_core::AutoTuneConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of the auto-tune surge experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A5Report {
    /// Mean load during the surge WITHOUT the tuner.
    pub surge_load_untuned: f64,
    /// Mean load during the surge WITH the tuner.
    pub surge_load_tuned: f64,
    /// Mean load after the surge departs, with the tuner (should recover
    /// toward the pre-surge level, not stay throttled).
    pub post_surge_load_tuned: f64,
    /// Δ multiplier at the end of the tuned run.
    pub final_multiplier: u64,
    /// Tuner adjustments made.
    pub adjustments: u64,
    /// Seconds simulated.
    pub duration: f64,
    /// Seed used.
    pub seed: u64,
}

impl fmt::Display for A5Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "A5 — SAPP device auto-tuner under a population surge (seed {})",
            self.seed
        )?;
        writeln!(
            f,
            "  surge load, no tuner    {:.2} probes/s",
            self.surge_load_untuned
        )?;
        writeln!(
            f,
            "  surge load, tuner on    {:.2} probes/s",
            self.surge_load_tuned
        )?;
        writeln!(
            f,
            "  post-surge load, tuned  {:.2} probes/s",
            self.post_surge_load_tuned
        )?;
        writeln!(
            f,
            "  tuner: {} adjustments, final multiplier {}×",
            self.adjustments, self.final_multiplier
        )
    }
}

fn surge_scenario(tune: Option<AutoTuneConfig>, duration: f64, seed: u64) -> Scenario {
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 60, duration, seed);
    cfg.initially_active = 10;
    // Surge: 50 more CPs join at 1/3 of the run, leave again at 2/3.
    cfg.churn = ChurnModel::Static;
    cfg.sapp_auto_tune = tune;
    cfg.load_window = 5.0;
    Scenario::build(cfg)
}

/// Runs the surge experiment.
#[must_use]
pub fn a5_auto_tune_surge(duration: f64, seed: u64) -> A5Report {
    let surge_start = duration / 3.0;
    let surge_end = 2.0 * duration / 3.0;

    let run = |tune: Option<AutoTuneConfig>| {
        let mut scenario = surge_scenario(tune, duration, seed);
        // Drive the surge by hand via Join/Leave events.
        let cps: Vec<_> = scenario.cp_actors().to_vec();
        {
            let sim = scenario.sim_mut();
            for &actor in cps.iter().skip(10) {
                sim.schedule_at(
                    presence_des::SimTime::from_secs_f64(surge_start),
                    actor,
                    crate::SimEvent::Join,
                );
                sim.schedule_at(
                    presence_des::SimTime::from_secs_f64(surge_end),
                    actor,
                    crate::SimEvent::Leave,
                );
            }
        }
        scenario.run();
        let result = scenario.collect();
        let mean_in = |from: f64, to: f64| {
            let vals: Vec<f64> = result
                .load_series
                .iter()
                .filter(|&&(t, _)| t >= from && t < to)
                .map(|&(_, v)| v)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        // Skip a settle margin after each transition.
        let surge_mean = mean_in(surge_start + 60.0, surge_end);
        let post_mean = mean_in(surge_end + 60.0, duration);
        (scenario, surge_mean, post_mean)
    };

    let (_, surge_untuned, _) = run(None);
    let (mut tuned_scenario, surge_tuned, post_tuned) = run(Some(AutoTuneConfig::default()));

    let (final_multiplier, adjustments) = {
        let device = tuned_scenario.device_actor();
        let actor = tuned_scenario
            .sim_mut()
            .actor::<crate::DeviceActor>(device)
            .expect("device actor");
        match actor.tuner() {
            Some(t) => (t.multiplier(), t.adjustments()),
            None => (1, 0),
        }
    };

    A5Report {
        surge_load_untuned: surge_untuned,
        surge_load_tuned: surge_tuned,
        post_surge_load_tuned: post_tuned,
        final_multiplier,
        adjustments,
        duration,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a5_tuner_makes_adjustments_and_recovers() {
        let r = a5_auto_tune_surge(3_000.0, 7);
        // The tuner must have reacted to the surge…
        assert!(r.adjustments > 0, "tuner never adjusted");
        // …and the post-surge load must sit in a sane band (the device is
        // not permanently throttled into silence).
        assert!(
            r.post_surge_load_tuned > 1.0,
            "post-surge load {} — device throttled to death",
            r.post_surge_load_tuned
        );
        assert!(r.surge_load_tuned.is_finite() && r.surge_load_untuned.is_finite());
    }

    #[test]
    fn a5_renders() {
        let r = a5_auto_tune_surge(600.0, 1);
        assert!(r.to_string().contains("A5"));
    }
}
