//! A4 — absence-detection latency across designs.
//!
//! The paper's requirement: "the absence of nodes should be detected
//! quickly (e.g., in the order of one second) while avoiding to overload
//! nodes". This preset crashes the device mid-run and measures, per CP,
//! the time from crash to verdict under SAPP and DCPP (with and without
//! loss), and contrasts the pull-probe designs with the push baselines
//! (plain heartbeat timeout and φ-accrual).
//!
//! Probe protocols pay `δ` (the probing interval in force) plus the
//! `TOF + 3·TOS = 85 ms` verdict; push designs pay a multiple of the
//! heartbeat interval.

use crate::{LossKind, Protocol, Scenario, ScenarioConfig};
use presence_core::{DeviceId, HeartbeatDevice, HeartbeatMonitor, PhiAccrualDetector, PhiConfig};
use presence_des::{SimDuration, SimTime, StreamRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Latency statistics for one detector configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A4Row {
    /// Human-readable configuration label.
    pub label: String,
    /// Mean detection latency (seconds) across monitors.
    pub mean_latency: f64,
    /// Worst detection latency.
    pub max_latency: f64,
    /// Best detection latency.
    pub min_latency: f64,
    /// Monitors that detected the crash / monitors still watching at crash
    /// time (monitors that had already issued a — necessarily false —
    /// verdict before the crash are not eligible).
    pub detected: (usize, usize),
    /// Verdicts issued *before* the crash (false positives, e.g. a run of
    /// lost probes exhausting the retransmission budget).
    pub false_verdicts: usize,
}

/// The detection-latency comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A4Report {
    /// One row per configuration.
    pub rows: Vec<A4Row>,
    /// When the device crashed (seconds into the run).
    pub crash_at: f64,
    /// Seed used.
    pub seed: u64,
}

impl fmt::Display for A4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "A4 — detection latency after a silent crash at t = {:.0} s (seed {})",
            self.crash_at, self.seed
        )?;
        writeln!(
            f,
            "  {:<34} {:>8} {:>8} {:>8} {:>9}",
            "configuration", "mean", "min", "max", "detected"
        )?;
        for r in &self.rows {
            write!(
                f,
                "  {:<34} {:>7.3}s {:>7.3}s {:>7.3}s {:>5}/{:<3}",
                r.label, r.mean_latency, r.min_latency, r.max_latency, r.detected.0, r.detected.1
            )?;
            if r.false_verdicts > 0 {
                write!(f, " ({} false verdict(s) pre-crash)", r.false_verdicts)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn probe_latencies(
    protocol: Protocol,
    loss: LossKind,
    label: &str,
    k: u32,
    crash_at: f64,
    seed: u64,
) -> A4Row {
    let mut cfg = ScenarioConfig::paper_defaults(protocol, k, crash_at + 60.0, seed);
    cfg.loss = loss;
    let mut scenario = Scenario::build(cfg);
    scenario.crash_device_at(crash_at);
    scenario.run();
    let result = scenario.collect();

    // Partition verdicts around the crash: only verdicts at/after the crash
    // measure *crash detection*; earlier ones are loss-induced false
    // positives (the CP stopped probing, so it cannot witness the crash).
    let mut latencies = Vec::new();
    let mut false_verdicts = 0usize;
    for cp in &result.cps {
        match cp.detected_absent_at {
            Some(t) if t >= crash_at => latencies.push(t - crash_at),
            Some(_) => false_verdicts += 1,
            None => {}
        }
    }
    let eligible = result.cps.len() - false_verdicts;
    summarize(label, &latencies, eligible, false_verdicts)
}

fn summarize(label: &str, latencies: &[f64], total: usize, false_verdicts: usize) -> A4Row {
    // No detections (e.g. every CP false-verdicted pre-crash): report flat
    // zeros rather than ±∞ from empty folds; `detected: (0, _)` carries the
    // "nothing was measured" signal.
    let (mean, min, max) = if latencies.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        (
            latencies.iter().sum::<f64>() / latencies.len() as f64,
            latencies.iter().copied().fold(f64::INFINITY, f64::min),
            latencies.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        )
    };
    A4Row {
        label: label.to_string(),
        mean_latency: mean,
        max_latency: max,
        min_latency: min,
        detected: (latencies.len(), total),
        false_verdicts,
    }
}

/// Simulates `k` independent heartbeat monitors (interval `hb_interval`,
/// timeout 3×interval) against a device that crashes at `crash_at`.
fn heartbeat_latencies(k: u32, hb_interval: f64, crash_at: f64, seed: u64) -> A4Row {
    let mut latencies = Vec::new();
    let mut rng = StreamRng::new(seed, 0xbea7);
    for m in 0..k {
        // Each monitor's stream starts at a random phase.
        let phase = rng.uniform(0.0, hb_interval);
        let mut device = HeartbeatDevice::new(
            DeviceId(0),
            SimTime::from_secs_f64(phase),
            SimDuration::from_secs_f64(hb_interval),
        );
        let mut monitor =
            HeartbeatMonitor::new(DeviceId(0), SimDuration::from_secs_f64(3.0 * hb_interval));
        // Deliver beats until the crash.
        loop {
            let at = device.next_heartbeat_at();
            if at.as_secs_f64() > crash_at {
                break;
            }
            let hb = device.emit(at);
            monitor.on_heartbeat(at, hb);
        }
        let deadline = monitor
            .suspicion_deadline()
            .unwrap_or_else(|| panic!("monitor {m} never synchronised"));
        latencies.push(deadline.as_secs_f64() - crash_at);
    }
    summarize(
        &format!("heartbeat (T = {hb_interval}s, 3T timeout)"),
        &latencies,
        k as usize,
        0,
    )
}

/// Simulates `k` φ-accrual detectors fed with slightly jittered heartbeats.
fn phi_latencies(k: u32, hb_interval: f64, crash_at: f64, seed: u64) -> A4Row {
    let mut latencies = Vec::new();
    let mut rng = StreamRng::new(seed, 0x9a11);
    for _ in 0..k {
        let mut det = PhiAccrualDetector::new(DeviceId(0), PhiConfig::default());
        let mut t = rng.uniform(0.0, hb_interval);
        while t <= crash_at {
            det.on_arrival(SimTime::from_secs_f64(t));
            t += hb_interval * rng.uniform(0.9, 1.1);
        }
        // Scan forward for the phi threshold crossing.
        let mut probe_t = crash_at;
        let latency = loop {
            probe_t += 0.01;
            if det.is_suspected(SimTime::from_secs_f64(probe_t)) {
                break probe_t - crash_at;
            }
            if probe_t > crash_at + 100.0 {
                break f64::NAN;
            }
        };
        if latency.is_finite() {
            latencies.push(latency);
        }
    }
    summarize(
        &format!("phi-accrual (T = {hb_interval}s, phi > 8)"),
        &latencies,
        k as usize,
        0,
    )
}

/// Runs the full detection-latency comparison with `k` monitors per
/// configuration.
#[must_use]
pub fn a4_detection_latency(k: u32, crash_at: f64, seed: u64) -> A4Report {
    let rows = vec![
        probe_latencies(
            Protocol::dcpp_paper(),
            LossKind::None,
            "DCPP probe (lossless)",
            k,
            crash_at,
            seed,
        ),
        probe_latencies(
            Protocol::dcpp_paper(),
            LossKind::Bernoulli(0.05),
            "DCPP probe (5% loss)",
            k,
            crash_at,
            seed,
        ),
        probe_latencies(
            Protocol::sapp_paper(),
            LossKind::None,
            "SAPP probe (lossless)",
            k,
            crash_at,
            seed,
        ),
        heartbeat_latencies(k, 1.0, crash_at, seed),
        phi_latencies(k, 1.0, crash_at, seed),
    ];
    A4Report {
        rows,
        crash_at,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a4_all_configs_detect() {
        let r = a4_detection_latency(5, 120.0, 3);
        for row in &r.rows {
            assert_eq!(
                row.detected.0, row.detected.1,
                "{}: only {}/{} detected",
                row.label, row.detected.0, row.detected.1
            );
            assert!(row.mean_latency > 0.0, "{}", row.label);
        }
    }

    #[test]
    fn a4_dcpp_latency_bounded_by_wait_plus_verdict() {
        let r = a4_detection_latency(5, 120.0, 3);
        let dcpp = &r.rows[0];
        // Worst case: the CP just started its d_min..(k·δ_min) wait when the
        // crash hit, plus the 85 ms verdict. With 5 CPs the assigned wait is
        // ~max(d_min, 5·δ_min) = 0.5 s.
        assert!(
            dcpp.max_latency < 2.0,
            "DCPP max latency {}",
            dcpp.max_latency
        );
    }

    #[test]
    fn a4_probe_beats_heartbeat() {
        let r = a4_detection_latency(5, 120.0, 3);
        let dcpp = r.rows[0].mean_latency;
        let hb = r.rows[3].mean_latency;
        assert!(
            dcpp < hb,
            "probe protocols should detect faster than 3T heartbeats: {dcpp} vs {hb}"
        );
    }

    #[test]
    fn a4_renders() {
        let r = a4_detection_latency(2, 60.0, 1);
        assert!(r.to_string().contains("A4"));
        assert_eq!(r.rows.len(), 5);
    }
}
