//! A6 — the dissemination phase the paper defers (extension).
//!
//! SAPP builds a CP overlay from the device's last-two-probers field so
//! that "on detecting the absence of a device, the CP uses this overlay
//! network to inform all CPs about the leave of the device rapidly. This
//! information dissemination phase of the protocol is not considered in
//! this paper." We implement it (gossip flood with duplicate suppression,
//! `presence-core::Disseminator`) and measure what the paper left open:
//! how much faster does the *last* CP learn of a departure with gossip
//! than by waiting for its own probe cycle to fail?

use crate::{Protocol, Scenario, ScenarioConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One arm (gossip on/off) of the dissemination comparison.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct A6Arm {
    /// Whether dissemination was enabled.
    pub disseminate: bool,
    /// Mean detection latency across CPs (seconds after the crash).
    pub mean_latency: f64,
    /// Worst (last-CP) detection latency.
    pub max_latency: f64,
    /// CPs that learned of the departure.
    pub detected: usize,
    /// Total leave notices sent over the overlay.
    pub notices_sent: u64,
}

/// The dissemination comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A6Report {
    /// Without gossip: every CP waits for its own probe failure.
    pub plain: A6Arm,
    /// With gossip over the last-two-probers overlay.
    pub gossip: A6Arm,
    /// CP population.
    pub k: u32,
    /// When the device crashed.
    pub crash_at: f64,
    /// Seed used.
    pub seed: u64,
}

impl fmt::Display for A6Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "A6 — leave-notice dissemination over the SAPP overlay (k = {}, crash at {:.0} s, seed {})",
            self.k, self.crash_at, self.seed
        )?;
        writeln!(
            f,
            "  {:<22} {:>10} {:>10} {:>9} {:>9}",
            "arm", "mean", "worst", "detected", "notices"
        )?;
        for arm in [&self.plain, &self.gossip] {
            writeln!(
                f,
                "  {:<22} {:>9.3}s {:>9.3}s {:>6}/{:<2} {:>9}",
                if arm.disseminate {
                    "gossip (overlay)"
                } else {
                    "probe-timeout only"
                },
                arm.mean_latency,
                arm.max_latency,
                arm.detected,
                self.k,
                arm.notices_sent
            )?;
        }
        writeln!(
            f,
            "  worst-case speed-up: {:.1}×",
            self.plain.max_latency / self.gossip.max_latency.max(1e-9)
        )
    }
}

fn arm(disseminate: bool, k: u32, crash_at: f64, seed: u64) -> A6Arm {
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), k, crash_at + 60.0, seed);
    cfg.disseminate = disseminate;
    let mut scenario = Scenario::build(cfg);
    scenario.crash_device_at(crash_at);
    scenario.run();
    let result = scenario.collect();
    let latencies: Vec<f64> = result
        .cps
        .iter()
        .filter_map(|c| c.detected_absent_at)
        .map(|t| t - crash_at)
        .collect();
    A6Arm {
        disseminate,
        mean_latency: latencies.iter().sum::<f64>() / latencies.len().max(1) as f64,
        max_latency: latencies.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        detected: latencies.len(),
        notices_sent: result.cps.iter().map(|c| c.notices_forwarded).sum(),
    }
}

/// Runs the dissemination comparison: `k` SAPP CPs, device crashes at
/// `crash_at` (late enough that the CPs' δ values have spread out).
#[must_use]
pub fn a6_dissemination(k: u32, crash_at: f64, seed: u64) -> A6Report {
    A6Report {
        plain: arm(false, k, crash_at, seed),
        gossip: arm(true, k, crash_at, seed),
        k,
        crash_at,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a6_gossip_never_hurts_and_sends_notices() {
        let r = a6_dissemination(20, 2_000.0, 13);
        assert_eq!(r.plain.detected, 20);
        assert_eq!(r.gossip.detected, 20);
        assert!(r.gossip.notices_sent > 0, "gossip arm sent no notices");
        assert_eq!(r.plain.notices_sent, 0, "plain arm must not gossip");
        assert!(
            r.gossip.max_latency <= r.plain.max_latency + 1e-9,
            "gossip regressed worst-case latency: {} vs {}",
            r.gossip.max_latency,
            r.plain.max_latency
        );
    }

    #[test]
    fn a6_renders() {
        let r = a6_dissemination(5, 200.0, 1);
        assert!(r.to_string().contains("A6"));
    }
}
