//! E3 — Figure 3: probe frequencies of 7 (out of 20) CPs over one minute.
//!
//! The paper zooms into `t ∈ [12 300, 12 360]` of a 20-CP SAPP run and shows
//! per-CP frequencies oscillating between near-0 and ≈ 12/s within a single
//! minute. This preset runs the same 20-CP scenario and cuts the same
//! window for the same 7 CP indices the paper plots (1, 2, 7, 10, 12, 19,
//! 20 — one-based in the paper's file names).

use super::e2_fig2::{figure_from_result, FigureReport};
use crate::{Protocol, Scenario, ScenarioConfig};

/// The CP indices (zero-based) matching the paper's
/// `cp_01/02/07/10/12/19/20_delay.txt` series.
pub const FIG3_CPS: [u32; 7] = [0, 1, 6, 9, 11, 18, 19];

/// Runs the Figure 3 workload and returns the one-minute window
/// `[window_start, window_start + 60)`.
///
/// The full simulation runs to `window_start + 60` so the window reflects
/// the same long-run state as the paper's (12 300 s in).
#[must_use]
pub fn e3_fig3_twenty_cps_minute(window_start: f64, seed: u64) -> FigureReport {
    let duration = window_start + 60.0;
    let cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 20, duration, seed);
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let result = scenario.collect();
    let mut report = figure_from_result(
        "Figure 3 (SAPP, 7 of 20 CPs, 1 min)",
        &result,
        &FIG3_CPS,
        seed,
    );
    // Cut each series to the window.
    for (_, series) in &mut report.series {
        series.retain(|&(t, _)| t >= window_start && t < window_start + 60.0);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_window_is_cut_correctly() {
        // A short stand-in window keeps the test fast; the bench binary
        // runs the paper's 12 300 s offset.
        let r = e3_fig3_twenty_cps_minute(600.0, 7);
        assert_eq!(r.series.len(), 7);
        for (id, series) in &r.series {
            for &(t, _) in series {
                assert!(
                    (600.0..660.0).contains(&t),
                    "cp{id} sample at {t} outside the window"
                );
            }
        }
    }

    #[test]
    fn fig3_some_cp_probes_in_window() {
        let r = e3_fig3_twenty_cps_minute(600.0, 7);
        let total: usize = r.series.iter().map(|(_, s)| s.len()).sum();
        assert!(total > 0, "no CP completed a cycle in the minute window");
    }
}
