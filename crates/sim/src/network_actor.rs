//! The network actor: one [`Fabric`] serving all nodes (the paper models
//! the network as a single process with one bounded buffer).
//!
//! # Single-hop delivery
//!
//! When a `Send` is admitted, the route is resolved on the spot and the
//! `Deliver` event is scheduled *directly on the destination actor* at the
//! sampled delivery time. A delivered message therefore costs exactly two
//! engine events — the `Send` dispatch and the `Deliver` firing — instead
//! of the previous three (`Send`, an `InTransit` self-event, and a
//! same-instant re-queued `Deliver`). The fabric's buffer accounting needs
//! no delivery callback: it settles its own deadline heap lazily (see
//! [`Fabric`]).
//!
//! # Dense routing
//!
//! Routes live in two flat tables indexed by the raw `CpId`/`DeviceId`
//! (ids are small and dense by construction — the scenario registers
//! `CpId(0..n)`). Unicast resolution is an array load, and `Broadcast`
//! walks the CP table by index without allocating. This also makes the
//! broadcast admission order deterministic by construction (ascending
//! `CpId`); the old `HashMap` route table iterated in hash order, which
//! std randomises per map instance.
//!
//! Messages addressed to an unregistered destination are counted as
//! `unroutable` in [`FabricStats`] — they never reach the fabric, so a
//! wiring bug cannot masquerade as network loss.
//!
//! # Decomposed topology: one plane per region
//!
//! The paper's single hub couples every participant at zero delay, which
//! provably collapses any region partition (see [`crate::region`]). A
//! *decomposed* network replaces the hub with several network **planes**
//! — each a full `NetworkActor` owning the routes of the participants
//! co-located with it — joined by inter-plane legs of exactly the
//! fabric's [`min_delay`](NetworkActor::min_delay). A `Send` whose
//! destination lives on another plane is forwarded as
//! [`SimEvent::Relay`] after one leg; the owning plane then admits it
//! with the leg *discounted* from its sampled delay
//! ([`Fabric::send_relayed`]), so delivery happens at
//! `t_send + max(sample, leg)` — bit-equal in distribution to the hub's
//! single draw whenever the delay model's minimum covers the leg (the
//! paper's three-mode model: `leg = fast = 100 µs`). The leg is real
//! wire time, which is exactly what gives a region cut between planes a
//! positive lookahead.

use crate::event::{Addr, SimEvent};
use crate::trace::NetTrace;
use presence_des::{Actor, ActorId, Context, SimDuration, SimTime};
use presence_net::{Fabric, FabricStats, SendOutcome};
use std::sync::Arc;

/// Where every participant lives in a decomposed (multi-plane) network:
/// the plane actor ids and the owning plane of each address, shared by
/// all planes of one scenario.
#[derive(Debug, Clone)]
pub struct PlaneTopology {
    /// Actor ids of every plane, indexed by plane number.
    pub planes: Vec<ActorId>,
    /// Owning plane of each CP, indexed by raw `CpId`.
    pub plane_of_cp: Vec<u32>,
    /// Owning plane of each device, indexed by raw `DeviceId`.
    pub plane_of_device: Vec<u32>,
    /// The inter-plane leg: one fabric `min_delay` of wire time, and the
    /// cross-region lookahead the decomposed topology offers.
    pub leg: SimDuration,
}

impl PlaneTopology {
    /// The plane owning `addr`, or `None` for an address outside the
    /// topology (reported unroutable by whichever plane first sees it).
    #[must_use]
    pub fn owner_of(&self, addr: Addr) -> Option<u32> {
        let (table, idx) = match addr {
            Addr::Cp(id) => (&self.plane_of_cp, id.0 as usize),
            Addr::Device(id) => (&self.plane_of_device, id.0 as usize),
        };
        table.get(idx).copied()
    }
}

/// Routes wire messages between node actors through a [`Fabric`].
pub struct NetworkActor {
    fabric: Fabric,
    /// CP routes, indexed by raw `CpId`.
    cp_routes: Vec<Option<ActorId>>,
    /// Device routes, indexed by raw `DeviceId`.
    device_routes: Vec<Option<ActorId>>,
    /// `Some((my_plane, topology))` in a decomposed topology; `None` for
    /// the classic hub.
    plane: Option<(u32, Arc<PlaneTopology>)>,
    /// Unicasts this plane forwarded to another plane's fabric.
    relays_forwarded: u64,
    /// Counter-sample buffer; `None` (one predictable branch per message
    /// event) unless [`NetworkActor::set_trace`] armed it.
    trace: Option<Box<NetTrace>>,
}

impl NetworkActor {
    /// Creates a network actor over the given fabric. Routes are registered
    /// afterwards with [`NetworkActor::register`].
    #[must_use]
    pub fn new(fabric: Fabric) -> Self {
        Self {
            fabric,
            cp_routes: Vec::new(),
            device_routes: Vec::new(),
            plane: None,
            relays_forwarded: 0,
            trace: None,
        }
    }

    /// Arms counter-sample tracing up to `until_ns` (virtual nanoseconds).
    pub fn set_trace(&mut self, until_ns: u64) {
        self.trace = Some(Box::new(NetTrace::new(until_ns)));
    }

    /// Takes the buffer accumulated since [`NetworkActor::set_trace`].
    pub fn take_trace(&mut self) -> Option<Box<NetTrace>> {
        self.trace.take()
    }

    /// Samples the in-flight and relay counters (at most once per
    /// simulated millisecond) when tracing is armed.
    fn trace_sample(&mut self, now: SimTime) {
        let Some(t) = self.trace.as_deref_mut() else {
            return;
        };
        if t.wants_sample(now.as_nanos()) {
            let in_flight = self.fabric.in_flight_at(now);
            let relays = self.relays_forwarded;
            if let Some(t) = self.trace.as_deref_mut() {
                t.sample(now.as_nanos(), in_flight, relays);
            }
        }
    }

    /// Turns this actor into plane `index` of a decomposed topology (see
    /// the [module docs](self)). Only locally owned routes should be
    /// [`register`](NetworkActor::register)ed on a plane.
    pub fn set_plane(&mut self, index: u32, topology: Arc<PlaneTopology>) {
        self.plane = Some((index, topology));
    }

    /// Unicasts this plane forwarded over an inter-plane leg (0 for a
    /// hub).
    #[must_use]
    pub fn relays_forwarded(&self) -> u64 {
        self.relays_forwarded
    }

    /// Registers (or re-registers) the actor behind a network address.
    pub fn register(&mut self, addr: Addr, actor: ActorId) {
        let (table, idx) = match addr {
            Addr::Cp(id) => (&mut self.cp_routes, id.0 as usize),
            Addr::Device(id) => (&mut self.device_routes, id.0 as usize),
        };
        if table.len() <= idx {
            table.resize(idx + 1, None);
        }
        table[idx] = Some(actor);
    }

    fn resolve(&self, addr: Addr) -> Option<ActorId> {
        let (table, idx) = match addr {
            Addr::Cp(id) => (&self.cp_routes, id.0 as usize),
            Addr::Device(id) => (&self.device_routes, id.0 as usize),
        };
        table.get(idx).copied().flatten()
    }

    /// The fabric's lookahead bound: no delivery this hub schedules can
    /// land sooner than this after its send (see
    /// `presence_net::DelayModel::min_delay`). Region planning uses it to
    /// decide whether a route through this hub can cross a region cut.
    #[must_use]
    pub fn min_delay(&self) -> SimDuration {
        self.fabric.min_delay()
    }

    /// Fabric counters (offered/admitted/dropped/delivered/unroutable) as
    /// of `now`.
    #[must_use]
    pub fn fabric_stats(&mut self, now: SimTime) -> FabricStats {
        self.fabric.stats_at(now)
    }

    /// The paper's "average buffer length": time-weighted mean in-flight
    /// count up to `now`.
    #[must_use]
    pub fn mean_occupancy(&mut self, now: SimTime) -> Option<f64> {
        self.fabric.mean_occupancy(now)
    }

    /// Offers `msg` to the fabric and, when admitted, schedules its
    /// `Deliver` on `target` at the sampled delivery time. `discount` is
    /// the wire time the message already spent on an inter-plane leg
    /// (zero on the hub and for plane-local traffic).
    fn admit(
        &mut self,
        ctx: &mut Context<'_, SimEvent>,
        target: ActorId,
        msg: presence_core::WireMessage,
        discount: SimDuration,
    ) {
        match self.fabric.send_relayed(ctx.now(), ctx.rng(), discount) {
            SendOutcome::Deliver(at) => {
                ctx.schedule_at(at, target, SimEvent::Deliver(msg));
            }
            SendOutcome::DroppedLoss | SendOutcome::DroppedOverflow => {
                // The message vanishes; the protocols' retransmission layer
                // is responsible for recovery.
            }
        }
    }

    /// Resolves a locally owned address and admits the message, counting
    /// a failed lookup as unroutable.
    fn admit_local(
        &mut self,
        ctx: &mut Context<'_, SimEvent>,
        to: Addr,
        msg: presence_core::WireMessage,
        discount: SimDuration,
    ) {
        match self.resolve(to) {
            Some(target) => self.admit(ctx, target, msg, discount),
            None => self.fabric.count_unroutable(),
        }
    }

    /// Admits one copy of a broadcast per locally registered CP, in
    /// ascending id order.
    fn broadcast_local(
        &mut self,
        ctx: &mut Context<'_, SimEvent>,
        msg: &presence_core::WireMessage,
        discount: SimDuration,
    ) {
        // Indexed walk: no allocation, deterministic CP order.
        for i in 0..self.cp_routes.len() {
            if let Some(target) = self.cp_routes[i] {
                self.admit(ctx, target, *msg, discount);
            }
        }
    }
}

impl Actor<SimEvent> for NetworkActor {
    fn on_event(&mut self, ctx: &mut Context<'_, SimEvent>, event: SimEvent) {
        match event {
            SimEvent::Send { to, msg } => {
                if let Some((my_plane, topology)) = self.plane.clone() {
                    match topology.owner_of(to) {
                        Some(owner) if owner != my_plane => {
                            // Another plane owns the destination: forward
                            // over the inter-plane leg; the owner admits
                            // with the leg discounted.
                            self.relays_forwarded += 1;
                            ctx.schedule_in(
                                topology.leg,
                                topology.planes[owner as usize],
                                SimEvent::Relay { to, msg },
                            );
                        }
                        Some(_) => self.admit_local(ctx, to, msg, SimDuration::ZERO),
                        None => self.fabric.count_unroutable(),
                    }
                } else {
                    self.admit_local(ctx, to, msg, SimDuration::ZERO);
                }
            }
            SimEvent::Relay { to, msg } => {
                let leg = self
                    .plane
                    .as_ref()
                    .map_or(SimDuration::ZERO, |(_, t)| t.leg);
                debug_assert!(
                    self.plane
                        .as_ref()
                        .is_some_and(|(me, t)| t.owner_of(to) == Some(*me)),
                    "relay arrived at a plane that does not own {to:?}"
                );
                self.admit_local(ctx, to, msg, leg);
            }
            SimEvent::Broadcast { msg } => {
                if let Some((my_plane, topology)) = self.plane.clone() {
                    self.broadcast_local(ctx, &msg, SimDuration::ZERO);
                    // Every other plane re-admits for its own CPs, in
                    // ascending plane order.
                    for (plane, &id) in topology.planes.iter().enumerate() {
                        if plane as u32 != my_plane {
                            ctx.schedule_in(topology.leg, id, SimEvent::RelayBroadcast { msg });
                        }
                    }
                } else {
                    self.broadcast_local(ctx, &msg, SimDuration::ZERO);
                }
            }
            SimEvent::RelayBroadcast { msg } => {
                let leg = self
                    .plane
                    .as_ref()
                    .map_or(SimDuration::ZERO, |(_, t)| t.leg);
                self.broadcast_local(ctx, &msg, leg);
            }
            other => {
                debug_assert!(false, "network actor got unexpected event {other:?}");
            }
        }
        self.trace_sample(ctx.now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor_set::{CollectorActor, PresenceSim};
    use presence_core::{CpId, DeviceId, Probe, WireMessage};
    use presence_des::{SimTime, Simulation};
    use presence_net::Fabric;

    fn probe() -> WireMessage {
        WireMessage::Probe(Probe {
            cp: CpId(0),
            seq: 1,
        })
    }

    /// Satellite regression: messages to an unregistered address used to
    /// vanish with no trace at all — indistinguishable from network loss.
    /// (These tests run on the typed actor set, so the network's enum
    /// dispatch path is what they exercise.)
    #[test]
    fn unroutable_messages_are_counted_not_dropped_silently() {
        let mut sim: PresenceSim = Simulation::with_actor_set(1);
        let network = sim.add_member(NetworkActor::new(Fabric::paper_default()).into());
        sim.schedule_at(
            SimTime::ZERO,
            network,
            SimEvent::Send {
                to: Addr::Cp(CpId(99)),
                msg: probe(),
            },
        );
        sim.schedule_at(
            SimTime::ZERO,
            network,
            SimEvent::Send {
                to: Addr::Device(DeviceId(7)),
                msg: probe(),
            },
        );
        sim.run_until_idle();
        let now = sim.now();
        let net = sim
            .actor_mut::<NetworkActor>(network)
            .expect("network actor");
        let stats = net.fabric_stats(now);
        assert_eq!(stats.unroutable, 2);
        // Unroutable messages never reach the fabric: not offered, not
        // counted as loss, no buffer slot occupied.
        assert_eq!(stats.offered, 0);
        assert_eq!(stats.dropped_loss, 0);
        assert_eq!(stats.admitted, 0);
    }

    /// A registered route makes the same send a normal two-event delivery.
    #[test]
    fn registered_route_admits_and_delivers() {
        let mut sim: PresenceSim = Simulation::with_actor_set(1);
        let network = sim.add_member(NetworkActor::new(Fabric::paper_default()).into());
        let sink = sim.add_member(CollectorActor::new().into());
        sim.actor_mut::<NetworkActor>(network)
            .expect("network actor")
            .register(Addr::Cp(CpId(3)), sink);
        sim.schedule_at(
            SimTime::ZERO,
            network,
            SimEvent::Send {
                to: Addr::Cp(CpId(3)),
                msg: probe(),
            },
        );
        sim.run_until_idle();
        assert_eq!(
            sim.actor::<CollectorActor>(sink)
                .expect("sink")
                .deliveries(),
            1
        );
        // Exactly two events: the Send dispatch and the Deliver firing.
        assert_eq!(sim.events_processed(), 2);
        let now = sim.now();
        let stats = sim
            .actor_mut::<NetworkActor>(network)
            .expect("network actor")
            .fabric_stats(now);
        assert_eq!(stats.unroutable, 0);
        assert_eq!((stats.offered, stats.delivered), (1, 1));
    }

    /// Broadcast admits one copy per registered CP, in ascending id order,
    /// without touching device routes.
    #[test]
    fn broadcast_reaches_every_registered_cp() {
        let mut sim: PresenceSim = Simulation::with_actor_set(1);
        let network = sim.add_member(NetworkActor::new(Fabric::paper_default()).into());
        let mut sinks = Vec::new();
        for i in 0..4u32 {
            let sink = sim.add_member(CollectorActor::new().into());
            sinks.push(sink);
            sim.actor_mut::<NetworkActor>(network)
                .expect("network actor")
                .register(Addr::Cp(CpId(i)), sink);
        }
        // A device route must not receive CP broadcasts.
        let dev = sim.add_member(CollectorActor::new().into());
        sim.actor_mut::<NetworkActor>(network)
            .expect("network actor")
            .register(Addr::Device(DeviceId(0)), dev);
        sim.schedule_at(SimTime::ZERO, network, SimEvent::Broadcast { msg: probe() });
        sim.run_until_idle();
        for &sink in &sinks {
            assert_eq!(
                sim.actor::<CollectorActor>(sink)
                    .expect("sink")
                    .deliveries(),
                1
            );
        }
        assert_eq!(
            sim.actor::<CollectorActor>(dev)
                .expect("device sink")
                .deliveries(),
            0
        );
        // 1 Broadcast dispatch + 4 Deliver firings.
        assert_eq!(sim.events_processed(), 5);
    }

    /// Builds a two-plane decomposed network with a constant-delay fabric:
    /// plane 0 owns CP 0, plane 1 owns CP 1. Returns
    /// `(sim, [plane0, plane1], [sink0, sink1], leg)`.
    fn two_planes(delay: SimDuration) -> (PresenceSim, [ActorId; 2], [ActorId; 2], SimDuration) {
        use presence_net::{ConstantDelay, NoLoss};
        let fabric = || Fabric::new(20_000, Box::new(ConstantDelay(delay)), Box::new(NoLoss));
        let mut sim: PresenceSim = Simulation::with_actor_set(1);
        let planes = [
            sim.add_member(NetworkActor::new(fabric()).into()),
            sim.add_member(NetworkActor::new(fabric()).into()),
        ];
        let sinks = [
            sim.add_member(CollectorActor::new().into()),
            sim.add_member(CollectorActor::new().into()),
        ];
        let leg = delay;
        let topology = Arc::new(PlaneTopology {
            planes: planes.to_vec(),
            plane_of_cp: vec![0, 1],
            plane_of_device: Vec::new(),
            leg,
        });
        for (i, &plane) in planes.iter().enumerate() {
            let net = sim.actor_mut::<NetworkActor>(plane).expect("plane");
            net.set_plane(i as u32, Arc::clone(&topology));
            net.register(Addr::Cp(CpId(i as u32)), sinks[i]);
        }
        (sim, planes, sinks, leg)
    }

    /// A cross-plane unicast is forwarded as a `Relay` after one leg, and
    /// the owning plane's leg discount makes end-to-end delivery equal the
    /// hub's single constant draw.
    #[test]
    fn cross_plane_send_delivers_at_hub_time() {
        let delay = SimDuration::from_micros(100);
        let (mut sim, planes, sinks, _leg) = two_planes(delay);
        // CP 1 lives on plane 1; send from plane 0.
        sim.schedule_at(
            SimTime::ZERO,
            planes[0],
            SimEvent::Send {
                to: Addr::Cp(CpId(1)),
                msg: probe(),
            },
        );
        sim.run_until_idle();
        assert_eq!(
            sim.actor::<CollectorActor>(sinks[1])
                .expect("sink")
                .deliveries(),
            1
        );
        // One leg (100 µs) + a fully discounted constant sample: delivery
        // at exactly the hub's 100 µs, not 200 µs.
        assert_eq!(sim.now(), SimTime::ZERO + delay);
        assert_eq!(
            sim.actor::<NetworkActor>(planes[0])
                .expect("plane 0")
                .relays_forwarded(),
            1
        );
        // The forwarding plane never offered the message to its own fabric.
        let now = sim.now();
        let stats0 = sim
            .actor_mut::<NetworkActor>(planes[0])
            .expect("plane 0")
            .fabric_stats(now);
        assert_eq!(stats0.offered, 0);
        let stats1 = sim
            .actor_mut::<NetworkActor>(planes[1])
            .expect("plane 1")
            .fabric_stats(now);
        assert_eq!((stats1.offered, stats1.delivered), (1, 1));
    }

    /// A plane-local unicast never touches the other plane.
    #[test]
    fn plane_local_send_stays_local() {
        let delay = SimDuration::from_micros(100);
        let (mut sim, planes, sinks, _leg) = two_planes(delay);
        sim.schedule_at(
            SimTime::ZERO,
            planes[0],
            SimEvent::Send {
                to: Addr::Cp(CpId(0)),
                msg: probe(),
            },
        );
        sim.run_until_idle();
        assert_eq!(
            sim.actor::<CollectorActor>(sinks[0])
                .expect("sink")
                .deliveries(),
            1
        );
        assert_eq!(sim.events_processed(), 2);
        assert_eq!(
            sim.actor::<NetworkActor>(planes[0])
                .expect("plane 0")
                .relays_forwarded(),
            0
        );
    }

    /// A broadcast reaches every CP on every plane exactly once, remote
    /// copies arriving at the same instant as the hub would deliver them.
    #[test]
    fn broadcast_fans_out_across_planes() {
        let delay = SimDuration::from_micros(100);
        let (mut sim, planes, sinks, _leg) = two_planes(delay);
        sim.schedule_at(
            SimTime::ZERO,
            planes[0],
            SimEvent::Broadcast { msg: probe() },
        );
        sim.run_until_idle();
        for &sink in &sinks {
            assert_eq!(
                sim.actor::<CollectorActor>(sink)
                    .expect("sink")
                    .deliveries(),
                1
            );
        }
        assert_eq!(sim.now(), SimTime::ZERO + delay);
    }
}
