//! The network actor: one [`Fabric`] serving all nodes (the paper models
//! the network as a single process with one bounded buffer).
//!
//! # Single-hop delivery
//!
//! When a `Send` is admitted, the route is resolved on the spot and the
//! `Deliver` event is scheduled *directly on the destination actor* at the
//! sampled delivery time. A delivered message therefore costs exactly two
//! engine events — the `Send` dispatch and the `Deliver` firing — instead
//! of the previous three (`Send`, an `InTransit` self-event, and a
//! same-instant re-queued `Deliver`). The fabric's buffer accounting needs
//! no delivery callback: it settles its own deadline heap lazily (see
//! [`Fabric`]).
//!
//! # Dense routing
//!
//! Routes live in two flat tables indexed by the raw `CpId`/`DeviceId`
//! (ids are small and dense by construction — the scenario registers
//! `CpId(0..n)`). Unicast resolution is an array load, and `Broadcast`
//! walks the CP table by index without allocating. This also makes the
//! broadcast admission order deterministic by construction (ascending
//! `CpId`); the old `HashMap` route table iterated in hash order, which
//! std randomises per map instance.
//!
//! Messages addressed to an unregistered destination are counted as
//! `unroutable` in [`FabricStats`] — they never reach the fabric, so a
//! wiring bug cannot masquerade as network loss.

use crate::event::{Addr, SimEvent};
use presence_des::{Actor, ActorId, Context, SimDuration, SimTime};
use presence_net::{Fabric, FabricStats, SendOutcome};

/// Routes wire messages between node actors through a [`Fabric`].
pub struct NetworkActor {
    fabric: Fabric,
    /// CP routes, indexed by raw `CpId`.
    cp_routes: Vec<Option<ActorId>>,
    /// Device routes, indexed by raw `DeviceId`.
    device_routes: Vec<Option<ActorId>>,
}

impl NetworkActor {
    /// Creates a network actor over the given fabric. Routes are registered
    /// afterwards with [`NetworkActor::register`].
    #[must_use]
    pub fn new(fabric: Fabric) -> Self {
        Self {
            fabric,
            cp_routes: Vec::new(),
            device_routes: Vec::new(),
        }
    }

    /// Registers (or re-registers) the actor behind a network address.
    pub fn register(&mut self, addr: Addr, actor: ActorId) {
        let (table, idx) = match addr {
            Addr::Cp(id) => (&mut self.cp_routes, id.0 as usize),
            Addr::Device(id) => (&mut self.device_routes, id.0 as usize),
        };
        if table.len() <= idx {
            table.resize(idx + 1, None);
        }
        table[idx] = Some(actor);
    }

    fn resolve(&self, addr: Addr) -> Option<ActorId> {
        let (table, idx) = match addr {
            Addr::Cp(id) => (&self.cp_routes, id.0 as usize),
            Addr::Device(id) => (&self.device_routes, id.0 as usize),
        };
        table.get(idx).copied().flatten()
    }

    /// The fabric's lookahead bound: no delivery this hub schedules can
    /// land sooner than this after its send (see
    /// `presence_net::DelayModel::min_delay`). Region planning uses it to
    /// decide whether a route through this hub can cross a region cut.
    #[must_use]
    pub fn min_delay(&self) -> SimDuration {
        self.fabric.min_delay()
    }

    /// Fabric counters (offered/admitted/dropped/delivered/unroutable) as
    /// of `now`.
    #[must_use]
    pub fn fabric_stats(&mut self, now: SimTime) -> FabricStats {
        self.fabric.stats_at(now)
    }

    /// The paper's "average buffer length": time-weighted mean in-flight
    /// count up to `now`.
    #[must_use]
    pub fn mean_occupancy(&mut self, now: SimTime) -> Option<f64> {
        self.fabric.mean_occupancy(now)
    }

    /// Offers `msg` to the fabric and, when admitted, schedules its
    /// `Deliver` on `target` at the sampled delivery time.
    fn admit(
        &mut self,
        ctx: &mut Context<'_, SimEvent>,
        target: ActorId,
        msg: presence_core::WireMessage,
    ) {
        match self.fabric.send(ctx.now(), ctx.rng()) {
            SendOutcome::Deliver(at) => {
                ctx.schedule_at(at, target, SimEvent::Deliver(msg));
            }
            SendOutcome::DroppedLoss | SendOutcome::DroppedOverflow => {
                // The message vanishes; the protocols' retransmission layer
                // is responsible for recovery.
            }
        }
    }
}

impl Actor<SimEvent> for NetworkActor {
    fn on_event(&mut self, ctx: &mut Context<'_, SimEvent>, event: SimEvent) {
        match event {
            SimEvent::Send { to, msg } => match self.resolve(to) {
                Some(target) => self.admit(ctx, target, msg),
                None => self.fabric.count_unroutable(),
            },
            SimEvent::Broadcast { msg } => {
                // Indexed walk: no allocation, deterministic CP order.
                for i in 0..self.cp_routes.len() {
                    if let Some(target) = self.cp_routes[i] {
                        self.admit(ctx, target, msg);
                    }
                }
            }
            other => {
                debug_assert!(false, "network actor got unexpected event {other:?}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor_set::{CollectorActor, PresenceSim};
    use presence_core::{CpId, DeviceId, Probe, WireMessage};
    use presence_des::{SimTime, Simulation};
    use presence_net::Fabric;

    fn probe() -> WireMessage {
        WireMessage::Probe(Probe {
            cp: CpId(0),
            seq: 1,
        })
    }

    /// Satellite regression: messages to an unregistered address used to
    /// vanish with no trace at all — indistinguishable from network loss.
    /// (These tests run on the typed actor set, so the network's enum
    /// dispatch path is what they exercise.)
    #[test]
    fn unroutable_messages_are_counted_not_dropped_silently() {
        let mut sim: PresenceSim = Simulation::with_actor_set(1);
        let network = sim.add_member(NetworkActor::new(Fabric::paper_default()).into());
        sim.schedule_at(
            SimTime::ZERO,
            network,
            SimEvent::Send {
                to: Addr::Cp(CpId(99)),
                msg: probe(),
            },
        );
        sim.schedule_at(
            SimTime::ZERO,
            network,
            SimEvent::Send {
                to: Addr::Device(DeviceId(7)),
                msg: probe(),
            },
        );
        sim.run_until_idle();
        let now = sim.now();
        let net = sim
            .actor_mut::<NetworkActor>(network)
            .expect("network actor");
        let stats = net.fabric_stats(now);
        assert_eq!(stats.unroutable, 2);
        // Unroutable messages never reach the fabric: not offered, not
        // counted as loss, no buffer slot occupied.
        assert_eq!(stats.offered, 0);
        assert_eq!(stats.dropped_loss, 0);
        assert_eq!(stats.admitted, 0);
    }

    /// A registered route makes the same send a normal two-event delivery.
    #[test]
    fn registered_route_admits_and_delivers() {
        let mut sim: PresenceSim = Simulation::with_actor_set(1);
        let network = sim.add_member(NetworkActor::new(Fabric::paper_default()).into());
        let sink = sim.add_member(CollectorActor::new().into());
        sim.actor_mut::<NetworkActor>(network)
            .expect("network actor")
            .register(Addr::Cp(CpId(3)), sink);
        sim.schedule_at(
            SimTime::ZERO,
            network,
            SimEvent::Send {
                to: Addr::Cp(CpId(3)),
                msg: probe(),
            },
        );
        sim.run_until_idle();
        assert_eq!(
            sim.actor::<CollectorActor>(sink)
                .expect("sink")
                .deliveries(),
            1
        );
        // Exactly two events: the Send dispatch and the Deliver firing.
        assert_eq!(sim.events_processed(), 2);
        let now = sim.now();
        let stats = sim
            .actor_mut::<NetworkActor>(network)
            .expect("network actor")
            .fabric_stats(now);
        assert_eq!(stats.unroutable, 0);
        assert_eq!((stats.offered, stats.delivered), (1, 1));
    }

    /// Broadcast admits one copy per registered CP, in ascending id order,
    /// without touching device routes.
    #[test]
    fn broadcast_reaches_every_registered_cp() {
        let mut sim: PresenceSim = Simulation::with_actor_set(1);
        let network = sim.add_member(NetworkActor::new(Fabric::paper_default()).into());
        let mut sinks = Vec::new();
        for i in 0..4u32 {
            let sink = sim.add_member(CollectorActor::new().into());
            sinks.push(sink);
            sim.actor_mut::<NetworkActor>(network)
                .expect("network actor")
                .register(Addr::Cp(CpId(i)), sink);
        }
        // A device route must not receive CP broadcasts.
        let dev = sim.add_member(CollectorActor::new().into());
        sim.actor_mut::<NetworkActor>(network)
            .expect("network actor")
            .register(Addr::Device(DeviceId(0)), dev);
        sim.schedule_at(SimTime::ZERO, network, SimEvent::Broadcast { msg: probe() });
        sim.run_until_idle();
        for &sink in &sinks {
            assert_eq!(
                sim.actor::<CollectorActor>(sink)
                    .expect("sink")
                    .deliveries(),
                1
            );
        }
        assert_eq!(
            sim.actor::<CollectorActor>(dev)
                .expect("device sink")
                .deliveries(),
            0
        );
        // 1 Broadcast dispatch + 4 Deliver firings.
        assert_eq!(sim.events_processed(), 5);
    }
}
