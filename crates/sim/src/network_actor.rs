//! The network actor: one [`Fabric`] serving all nodes (the paper models
//! the network as a single process with one bounded buffer).

use crate::event::{Addr, SimEvent};
use presence_des::{Actor, ActorId, Context, SimTime};
use presence_net::{Fabric, FabricStats, SendOutcome};
use std::collections::HashMap;

/// Routes wire messages between node actors through a [`Fabric`].
pub struct NetworkActor {
    fabric: Fabric,
    routes: HashMap<Addr, ActorId>,
}

impl NetworkActor {
    /// Creates a network actor over the given fabric. Routes are registered
    /// afterwards with [`NetworkActor::register`].
    #[must_use]
    pub fn new(fabric: Fabric) -> Self {
        Self {
            fabric,
            routes: HashMap::new(),
        }
    }

    /// Registers (or re-registers) the actor behind a network address.
    pub fn register(&mut self, addr: Addr, actor: ActorId) {
        self.routes.insert(addr, actor);
    }

    /// Fabric counters (offered/admitted/dropped/delivered).
    #[must_use]
    pub fn fabric_stats(&self) -> FabricStats {
        self.fabric.stats()
    }

    /// The paper's "average buffer length": time-weighted mean in-flight
    /// count up to `now`.
    #[must_use]
    pub fn mean_occupancy(&self, now: SimTime) -> Option<f64> {
        self.fabric.mean_occupancy(now)
    }

    fn admit(
        &mut self,
        ctx: &mut Context<'_, SimEvent>,
        to: Addr,
        msg: presence_core::WireMessage,
    ) {
        let me = ctx.me();
        match self.fabric.send(ctx.now(), ctx.rng()) {
            SendOutcome::Deliver(at) => {
                ctx.schedule_at(at, me, SimEvent::InTransit { to, msg });
            }
            SendOutcome::DroppedLoss | SendOutcome::DroppedOverflow => {
                // The message vanishes; the protocols' retransmission layer
                // is responsible for recovery.
            }
        }
    }
}

impl Actor<SimEvent> for NetworkActor {
    fn on_event(&mut self, ctx: &mut Context<'_, SimEvent>, event: SimEvent) {
        match event {
            SimEvent::Send { to, msg } => self.admit(ctx, to, msg),
            SimEvent::Broadcast { msg } => {
                let cps: Vec<Addr> = self
                    .routes
                    .keys()
                    .filter(|a| matches!(a, Addr::Cp(_)))
                    .copied()
                    .collect();
                for to in cps {
                    self.admit(ctx, to, msg);
                }
            }
            SimEvent::InTransit { to, msg } => {
                self.fabric.on_delivered(ctx.now());
                if let Some(&actor) = self.routes.get(&to) {
                    ctx.send_now(actor, SimEvent::Deliver(msg));
                }
                // Unroutable addresses (e.g. a CP that was never registered)
                // silently drop, like a real network.
            }
            other => {
                debug_assert!(false, "network actor got unexpected event {other:?}");
            }
        }
    }
}
