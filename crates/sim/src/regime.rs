//! The regime scheduler: drives mid-run churn-model switches at configured
//! sim-time boundaries.
//!
//! Time-varying *network* models need no driver — [`presence_net::Scheduled`]
//! switches itself as the fabric samples it with the event clock. Churn is
//! different: the churn actor owns self-scheduled resample events and
//! in-flight wave joins/leaves, so a switch must be an *event* it can react
//! to (cancel stale timers, unwind pending waves, re-arm). The
//! [`RegimeActor`] schedules one [`SimEvent::SetChurn`] per boundary at
//! start-up — absolute times, no drift, deterministic under any seed, and
//! exact at the boundary instant (the switch event carries the boundary's
//! own timestamp).

use crate::churn::ChurnModel;
use crate::event::SimEvent;
use presence_des::{Actor, ActorId, Context, SimTime};

/// Schedules [`SimEvent::SetChurn`] on the churn actor at each configured
/// boundary.
pub struct RegimeActor {
    churn: ActorId,
    switches: Vec<(f64, ChurnModel)>,
}

impl RegimeActor {
    /// Creates a scheduler that switches the churn actor to each model at
    /// its paired absolute time (seconds).
    ///
    /// # Panics
    ///
    /// Panics unless the switch times are strictly increasing and positive
    /// (a switch at t = 0 should be the scenario's *initial* model, not a
    /// regime change).
    #[must_use]
    pub fn new(churn: ActorId, switches: Vec<(f64, ChurnModel)>) -> Self {
        for pair in switches.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "churn switch times must be strictly increasing"
            );
        }
        if let Some(&(first, _)) = switches.first() {
            assert!(first > 0.0, "first churn switch must be after t = 0");
        }
        Self { churn, switches }
    }

    /// The scheduled switches.
    #[must_use]
    pub fn switches(&self) -> &[(f64, ChurnModel)] {
        &self.switches
    }
}

impl Actor<SimEvent> for RegimeActor {
    fn on_start(&mut self, ctx: &mut Context<'_, SimEvent>) {
        for &(at, model) in &self.switches {
            ctx.schedule_at(
                SimTime::from_secs_f64(at),
                self.churn,
                SimEvent::SetChurn(model),
            );
        }
    }

    fn on_event(&mut self, _ctx: &mut Context<'_, SimEvent>, event: SimEvent) {
        debug_assert!(false, "regime actor got unexpected event {event:?}");
    }
}
