//! # presence-sim
//!
//! The simulation harness that reproduces the paper's evaluation: it runs
//! the sans-io protocol machines from `presence-core` over the
//! deterministic DES engine (`presence-des`) and the simulated network
//! (`presence-net`), under the workloads the paper studies.
//!
//! * [`Scenario`] / [`ScenarioConfig`] — build and run one experiment
//!   (protocol, population, network, churn, seed, duration).
//! * [`ChurnModel`] — static populations, the Figure 4 burst-leave, and the
//!   Figure 5 uniform-resample churn.
//! * [`ScenarioResult`] — device load series, per-CP frequency series
//!   (Figures 2–4), buffer occupancy, fairness indices.
//! * [`experiments`] — one preset per paper artifact (E1–E7) and ablation
//!   (A1–A4); the `presence-bench` binaries are thin wrappers over these.
//! * [`parallel`] / [`replicate`] — seed- and parameter-parallel study
//!   runners (`PRESENCE_JOBS` workers) whose merged results are
//!   bit-identical to a serial run.
//!
//! ```
//! use presence_sim::{Protocol, Scenario, ScenarioConfig};
//!
//! let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 5, 60.0, 42);
//! let mut scenario = Scenario::build(cfg);
//! scenario.run();
//! let result = scenario.collect();
//! assert!(result.device_probes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor_set;
mod churn;
mod cp_actor;
mod device_actor;
mod event;
pub mod experiments;
pub mod lab;
mod mega;
mod metrics;
mod network_actor;
mod output;
pub mod parallel;
mod recorder;
mod regime;
pub mod region;
mod replication;
mod scenario;
pub mod test_profile;
pub mod trace;

pub use actor_set::{CollectorActor, PresenceActorSet, PresenceSim};
pub use churn::{ChurnActor, ChurnModel};
pub use cp_actor::{CpActor, CpRecord, ProberFactory};
pub use device_actor::{DeviceActor, DeviceMachine, ProcessingModel};
pub use event::{Addr, SimEvent};
pub use lab::{
    builtin_catalog, run_lab, run_spec_once, slice_result, ChurnPhase, DelayPhase, LabReport,
    LabSeedResult, LossPhase, RegimeSlice, ScenarioSpec, SpecError,
};
pub use mega::{
    mega_catalog, run_mega_sharded, run_mega_spec, shard_configs, MegaConfig, MegaDcppShard,
    MegaResult, MegaScenario, MegaSpec,
};
pub use metrics::{CpSummary, ScenarioResult};
pub use network_actor::NetworkActor;
pub use output::{ascii_chart, kv_table, series_to_columns, series_to_csv};
pub use parallel::{for_each_indexed, job_count, run_indexed, ParamSweep};
pub use recorder::RecorderMode;
pub use regime::RegimeActor;
pub use region::{
    parse_regions, plan_partitioned, region_count, PartitionError, RegionPartition, RegionPlan,
};
pub use replication::{replicate, replicate_with_jobs, ReplicationPoint, ReplicationSummary};
pub use scenario::{
    golden_trio, DecomposedScenario, DelayKind, LossKind, Protocol, Scenario, ScenarioConfig,
    DECOMPOSED_PLANES, WAN_LEG_FLOOR,
};
pub use trace::flow_id;
