//! The common interface of device-side (probed) state machines.

use crate::types::{DeviceId, Probe, Reply};
use presence_des::SimTime;

/// A sans-io device: answers probes, nothing more.
///
/// Both [`crate::SappDevice`] and [`crate::DcppDevice`] implement this, so
/// drivers and scenarios can switch protocol by swapping one value.
pub trait Responder {
    /// The device's identity.
    fn id(&self) -> DeviceId;

    /// Handles a probe arriving at `now`, producing the reply to send back.
    fn on_probe(&mut self, now: SimTime, probe: Probe) -> Reply;

    /// Total probes answered so far (the device-load numerator).
    fn probes_received(&self) -> u64;
}

impl Responder for crate::SappDevice {
    fn id(&self) -> DeviceId {
        Self::id(self)
    }
    fn on_probe(&mut self, now: SimTime, probe: Probe) -> Reply {
        Self::on_probe(self, now, probe)
    }
    fn probes_received(&self) -> u64 {
        Self::probes_received(self)
    }
}

impl Responder for crate::DcppDevice {
    fn id(&self) -> DeviceId {
        Self::id(self)
    }
    fn on_probe(&mut self, now: SimTime, probe: Probe) -> Reply {
        Self::on_probe(self, now, probe)
    }
    fn probes_received(&self) -> u64 {
        Self::probes_received(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpId, DcppConfig, DcppDevice, SappDevice, SappDeviceConfig};

    #[test]
    fn devices_are_interchangeable_behind_the_trait() {
        let mut devices: Vec<Box<dyn Responder>> = vec![
            Box::new(SappDevice::new(
                DeviceId(0),
                SappDeviceConfig::paper_default(),
            )),
            Box::new(DcppDevice::new(DeviceId(1), DcppConfig::paper_default())),
        ];
        for d in &mut devices {
            let probe = Probe {
                cp: CpId(1),
                seq: 0,
            };
            let reply = d.on_probe(SimTime::ZERO, probe);
            assert_eq!(reply.probe, probe);
            assert_eq!(reply.device, d.id());
            assert_eq!(d.probes_received(), 1);
        }
    }
}
