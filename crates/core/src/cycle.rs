//! The bounded-retransmission probe cycle (Fig. 1 of the paper).
//!
//! Both protocols share this mechanism: a probe cycle starts with a probe
//! and ends with either a reply (successful) or a timeout after three
//! retransmissions (unsuccessful). The first timeout is `TOF`, subsequent
//! ones `TOS < TOF` — once the first probe goes unanswered the device is
//! probably gone, so the remaining probes are sent in rapid succession to
//! shorten detection time.
//!
//! [`Retransmitter`] owns exactly this cycle and nothing else; the
//! protocol-specific delay policy (SAPP's Eq. 1 adaptation, DCPP's
//! device-dictated wait) lives in the CP machines that embed it.

use crate::config::ProbeCycleConfig;
use crate::types::{CpAction, CpId, CpStats, Probe, TimerToken};
use presence_des::SimTime;
use serde::{Deserialize, Serialize};

/// What a reply meant to the current cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplyDisposition {
    /// The reply answers the in-flight cycle; the cycle is complete.
    Accepted {
        /// The paper's anchor time `t` for the `L_exp` estimate: the reply
        /// arrival time for a first-attempt success, or the send time of the
        /// last retransmission when the cycle needed retransmitting.
        anchor: SimTime,
        /// How many transmissions the cycle used (1 = no retransmission).
        transmissions: u32,
    },
    /// The reply refers to an older cycle (or none is in flight) and must
    /// be ignored.
    Stale,
}

/// What a timer firing meant to the current cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimerDisposition {
    /// A retransmission was sent; the cycle continues.
    Retransmitted,
    /// The cycle exhausted all transmissions; the device should be declared
    /// absent.
    CycleFailed,
    /// The token does not belong to the cycle's current timer (stale timer
    /// or a wake timer owned by the embedding machine).
    NotMine,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum State {
    /// No probe in flight.
    Idle,
    /// A probe (or retransmission) is awaiting a reply.
    Awaiting {
        seq: u64,
        /// Transmissions so far (1 after the initial probe).
        transmissions: u32,
        last_send: SimTime,
        timer: TimerToken,
    },
    /// The last cycle failed; the machine will not probe again.
    Failed,
}

/// The bounded-retransmission engine embedded in every CP machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Retransmitter {
    cfg: ProbeCycleConfig,
    cp: CpId,
    state: State,
    next_seq: u64,
    next_token: u64,
    stats: CpStats,
}

impl Retransmitter {
    /// Creates an engine for control point `cp`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — validate configs at the
    /// boundary with [`ProbeCycleConfig::validate`] for a recoverable error.
    #[must_use]
    pub fn new(cp: CpId, cfg: ProbeCycleConfig) -> Self {
        cfg.validate().expect("invalid probe-cycle configuration");
        Self {
            cfg,
            cp,
            state: State::Idle,
            next_seq: 0,
            next_token: 0,
            stats: CpStats::default(),
        }
    }

    /// The owning control point.
    #[must_use]
    pub fn cp(&self) -> CpId {
        self.cp
    }

    /// The cycle configuration.
    #[must_use]
    pub fn config(&self) -> &ProbeCycleConfig {
        &self.cfg
    }

    /// Running statistics.
    #[must_use]
    pub fn stats(&self) -> &CpStats {
        &self.stats
    }

    /// Whether a probe is currently awaiting a reply.
    #[must_use]
    pub fn is_awaiting(&self) -> bool {
        matches!(self.state, State::Awaiting { .. })
    }

    /// Whether the engine reached the failed (device-absent) state.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        matches!(self.state, State::Failed)
    }

    /// Mints a fresh timer token. The embedding machine uses this for its
    /// own timers (e.g. the inter-cycle wake timer) so tokens never collide
    /// with the cycle's timeout timers.
    #[must_use]
    pub fn mint_token(&mut self) -> TimerToken {
        let t = TimerToken(self.next_token);
        self.next_token += 1;
        t
    }

    /// Starts a new probe cycle at `now`: emits the probe and arms the
    /// first-probe timeout (`TOF`).
    ///
    /// # Panics
    ///
    /// Panics if a cycle is already in flight or the engine has failed —
    /// both indicate a driver bug.
    pub fn begin_cycle(&mut self, now: SimTime, out: &mut Vec<CpAction>) {
        assert!(
            matches!(self.state, State::Idle),
            "begin_cycle while {:?}",
            self.state
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let timer = self.mint_token();
        self.stats.cycles_started += 1;
        self.stats.probes_sent += 1;
        out.push(CpAction::SendProbe(Probe { cp: self.cp, seq }));
        out.push(CpAction::StartTimer {
            token: timer,
            after: self.cfg.tof,
        });
        self.state = State::Awaiting {
            seq,
            transmissions: 1,
            last_send: now,
            timer,
        };
    }

    /// Processes a reply carrying cycle sequence `seq`.
    pub fn on_reply(
        &mut self,
        _now: SimTime,
        seq: u64,
        reply_time: SimTime,
        out: &mut Vec<CpAction>,
    ) -> ReplyDisposition {
        match self.state {
            State::Awaiting {
                seq: cur,
                transmissions,
                last_send,
                timer,
            } if cur == seq => {
                out.push(CpAction::CancelTimer { token: timer });
                self.state = State::Idle;
                self.stats.cycles_succeeded += 1;
                // The paper: "Assume the CP receives a reply on a probe with
                // probe-count pc at time t. (In case of a failed probe, the
                // time at which the retransmitted probe has been sent is
                // taken.)"
                let anchor = if transmissions == 1 {
                    reply_time
                } else {
                    last_send
                };
                ReplyDisposition::Accepted {
                    anchor,
                    transmissions,
                }
            }
            _ => {
                self.stats.stale_replies += 1;
                ReplyDisposition::Stale
            }
        }
    }

    /// Processes a timer firing with the given token.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        token: TimerToken,
        out: &mut Vec<CpAction>,
    ) -> TimerDisposition {
        match self.state {
            State::Awaiting {
                seq,
                transmissions,
                timer,
                ..
            } if timer == token => {
                if transmissions > self.cfg.max_retransmissions {
                    self.state = State::Failed;
                    self.stats.cycles_failed += 1;
                    TimerDisposition::CycleFailed
                } else {
                    let new_timer = self.mint_token();
                    self.stats.probes_sent += 1;
                    self.stats.retransmissions += 1;
                    out.push(CpAction::SendProbe(Probe { cp: self.cp, seq }));
                    out.push(CpAction::StartTimer {
                        token: new_timer,
                        after: self.cfg.tos,
                    });
                    self.state = State::Awaiting {
                        seq,
                        transmissions: transmissions + 1,
                        last_send: now,
                        timer: new_timer,
                    };
                    TimerDisposition::Retransmitted
                }
            }
            _ => TimerDisposition::NotMine,
        }
    }

    /// Abandons any in-flight cycle (used when a Bye or leave notice makes
    /// further probing pointless). Emits the timer cancellation if needed.
    pub fn abort(&mut self, out: &mut Vec<CpAction>) {
        if let State::Awaiting { timer, .. } = self.state {
            out.push(CpAction::CancelTimer { token: timer });
        }
        self.state = State::Failed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presence_des::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn engine() -> Retransmitter {
        Retransmitter::new(CpId(1), ProbeCycleConfig::paper_default())
    }

    fn find_probe(out: &[CpAction]) -> Probe {
        out.iter()
            .find_map(|a| match a {
                CpAction::SendProbe(p) => Some(*p),
                _ => None,
            })
            .expect("no probe emitted")
    }

    fn find_timer(out: &[CpAction]) -> (TimerToken, SimDuration) {
        out.iter()
            .find_map(|a| match a {
                CpAction::StartTimer { token, after } => Some((*token, *after)),
                _ => None,
            })
            .expect("no timer armed")
    }

    #[test]
    fn successful_first_probe() {
        let mut e = engine();
        let mut out = Vec::new();
        e.begin_cycle(t(0.0), &mut out);
        let probe = find_probe(&out);
        let (_, after) = find_timer(&out);
        assert_eq!(after, SimDuration::from_millis(22), "first timeout is TOF");
        assert!(e.is_awaiting());

        out.clear();
        let disp = e.on_reply(t(0.005), probe.seq, t(0.005), &mut out);
        match disp {
            ReplyDisposition::Accepted {
                anchor,
                transmissions,
            } => {
                assert_eq!(anchor, t(0.005), "first-attempt anchor is reply time");
                assert_eq!(transmissions, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(out[0], CpAction::CancelTimer { .. }));
        assert!(!e.is_awaiting());
        assert_eq!(e.stats().cycles_succeeded, 1);
        assert_eq!(e.stats().probes_sent, 1);
    }

    #[test]
    fn retransmission_uses_tos_and_same_seq() {
        let mut e = engine();
        let mut out = Vec::new();
        e.begin_cycle(t(0.0), &mut out);
        let probe = find_probe(&out);
        let (tok, _) = find_timer(&out);

        out.clear();
        let disp = e.on_timer(t(0.022), tok, &mut out);
        assert_eq!(disp, TimerDisposition::Retransmitted);
        let re = find_probe(&out);
        assert_eq!(re.seq, probe.seq, "retransmission reuses the cycle seq");
        let (_, after) = find_timer(&out);
        assert_eq!(after, SimDuration::from_millis(21), "retry timeout is TOS");
        assert_eq!(e.stats().retransmissions, 1);
    }

    #[test]
    fn anchor_after_retransmission_is_send_time() {
        let mut e = engine();
        let mut out = Vec::new();
        e.begin_cycle(t(0.0), &mut out);
        let probe = find_probe(&out);
        let (tok, _) = find_timer(&out);
        out.clear();
        e.on_timer(t(0.022), tok, &mut out); // retransmit at 0.022
        out.clear();
        let disp = e.on_reply(t(0.030), probe.seq, t(0.030), &mut out);
        match disp {
            ReplyDisposition::Accepted {
                anchor,
                transmissions,
            } => {
                assert_eq!(anchor, t(0.022), "anchor is the retransmission send time");
                assert_eq!(transmissions, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn four_unanswered_probes_fail_the_cycle() {
        let mut e = engine();
        let mut out = Vec::new();
        e.begin_cycle(t(0.0), &mut out);
        let mut now = 0.022;
        // Three retransmissions succeed in being sent…
        for i in 0..3 {
            let (tok, _) = find_timer(&out);
            out.clear();
            let disp = e.on_timer(t(now), tok, &mut out);
            assert_eq!(disp, TimerDisposition::Retransmitted, "retry {i}");
            now += 0.021;
        }
        // …the fourth timeout fails the cycle.
        let (tok, _) = find_timer(&out);
        out.clear();
        let disp = e.on_timer(t(now), tok, &mut out);
        assert_eq!(disp, TimerDisposition::CycleFailed);
        assert!(e.is_failed());
        assert_eq!(e.stats().probes_sent, 4);
        assert_eq!(e.stats().cycles_failed, 1);
        // Total detection time: TOF + 3 TOS = 0.085 s.
        assert!((now - 0.085).abs() < 1e-9);
    }

    #[test]
    fn stale_reply_ignored() {
        let mut e = engine();
        let mut out = Vec::new();
        e.begin_cycle(t(0.0), &mut out);
        let probe = find_probe(&out);
        out.clear();
        // Reply to a different (older) seq.
        let disp = e.on_reply(t(0.01), probe.seq + 100, t(0.01), &mut out);
        assert_eq!(disp, ReplyDisposition::Stale);
        assert!(e.is_awaiting(), "cycle still in flight");
        assert!(out.is_empty());
        assert_eq!(e.stats().stale_replies, 1);
    }

    #[test]
    fn duplicate_reply_is_stale() {
        let mut e = engine();
        let mut out = Vec::new();
        e.begin_cycle(t(0.0), &mut out);
        let probe = find_probe(&out);
        out.clear();
        let first = e.on_reply(t(0.01), probe.seq, t(0.01), &mut out);
        assert!(matches!(first, ReplyDisposition::Accepted { .. }));
        out.clear();
        // The duplicate (e.g. the reply to a retransmission) must not
        // complete a second cycle.
        let dup = e.on_reply(t(0.011), probe.seq, t(0.011), &mut out);
        assert_eq!(dup, ReplyDisposition::Stale);
    }

    #[test]
    fn stale_timer_ignored() {
        let mut e = engine();
        let mut out = Vec::new();
        e.begin_cycle(t(0.0), &mut out);
        let probe = find_probe(&out);
        let (tok, _) = find_timer(&out);
        out.clear();
        e.on_reply(t(0.01), probe.seq, t(0.01), &mut out);
        out.clear();
        // The cancelled timeout fires anyway (drivers may race) — ignored.
        let disp = e.on_timer(t(0.022), tok, &mut out);
        assert_eq!(disp, TimerDisposition::NotMine);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "begin_cycle while")]
    fn begin_while_awaiting_panics() {
        let mut e = engine();
        let mut out = Vec::new();
        e.begin_cycle(t(0.0), &mut out);
        e.begin_cycle(t(0.1), &mut out);
    }

    #[test]
    fn abort_cancels_inflight_timer() {
        let mut e = engine();
        let mut out = Vec::new();
        e.begin_cycle(t(0.0), &mut out);
        let (tok, _) = find_timer(&out);
        out.clear();
        e.abort(&mut out);
        assert_eq!(out, vec![CpAction::CancelTimer { token: tok }]);
        assert!(e.is_failed());
    }

    #[test]
    fn seqs_increase_per_cycle() {
        let mut e = engine();
        let mut out = Vec::new();
        e.begin_cycle(t(0.0), &mut out);
        let p1 = find_probe(&out);
        out.clear();
        e.on_reply(t(0.01), p1.seq, t(0.01), &mut out);
        out.clear();
        e.begin_cycle(t(1.0), &mut out);
        let p2 = find_probe(&out);
        assert_eq!(p2.seq, p1.seq + 1);
    }

    #[test]
    fn minted_tokens_unique() {
        let mut e = engine();
        let a = e.mint_token();
        let b = e.mint_token();
        assert_ne!(a, b);
    }

    #[test]
    fn custom_retransmission_count() {
        let cfg = ProbeCycleConfig {
            max_retransmissions: 1,
            ..ProbeCycleConfig::paper_default()
        };
        let mut e = Retransmitter::new(CpId(0), cfg);
        let mut out = Vec::new();
        e.begin_cycle(t(0.0), &mut out);
        let (tok, _) = find_timer(&out);
        out.clear();
        assert_eq!(
            e.on_timer(t(0.022), tok, &mut out),
            TimerDisposition::Retransmitted
        );
        let (tok, _) = find_timer(&out);
        out.clear();
        assert_eq!(
            e.on_timer(t(0.043), tok, &mut out),
            TimerDisposition::CycleFailed
        );
    }
}
