//! Protocol configuration with validation.
//!
//! All constants carry the values used in the paper's simulation studies as
//! `paper_default()` constructors, so every experiment in `presence-bench`
//! is traceable to §3/§5 of the paper.

use crate::error::ConfigError;
use presence_des::SimDuration;
use serde::{Deserialize, Serialize};

/// Timing of the bounded-retransmission probe cycle (Fig. 1).
///
/// A cycle starts with a probe; if no reply arrives within `tof`, the probe
/// is retransmitted up to `max_retransmissions` times with timeout `tos`
/// each. A cycle with no reply at all declares the device absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeCycleConfig {
    /// Timeout after the first probe (`TOF`). The paper: 2·RTT_max + C_max.
    pub tof: SimDuration,
    /// Timeout after each retransmission (`TOS`), typically < `tof`.
    pub tos: SimDuration,
    /// Maximum number of retransmissions (the paper: 3, i.e. 4 probes).
    pub max_retransmissions: u32,
}

impl ProbeCycleConfig {
    /// The paper's values: `TOF = 0.022 s`, `TOS = 0.021 s`, 3 retries.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            tof: SimDuration::from_millis(22),
            tos: SimDuration::from_millis(21),
            max_retransmissions: 3,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tof == SimDuration::ZERO {
            return Err(ConfigError::new("tof must be positive"));
        }
        if self.tos == SimDuration::ZERO {
            return Err(ConfigError::new("tos must be positive"));
        }
        if self.tos > self.tof {
            return Err(ConfigError::new(
                "tos should not exceed tof (the paper assumes TOS < TOF)",
            ));
        }
        Ok(())
    }

    /// Worst-case time from the first probe transmission to the absence
    /// verdict: `tof + max_retransmissions · tos`.
    #[must_use]
    pub fn worst_case_detection(&self) -> SimDuration {
        let mut d = self.tof;
        for _ in 0..self.max_retransmissions {
            d = d + self.tos;
        }
        d
    }
}

/// Configuration of the self-adaptive probe protocol (SAPP, §2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SappConfig {
    /// Probe-cycle timing.
    pub cycle: ProbeCycleConfig,
    /// Multiplicative delay increase factor `α_inc > 1`.
    pub alpha_inc: f64,
    /// Multiplicative delay decrease factor `α_dec > 1` (applied as `δ/α_dec`).
    pub alpha_dec: f64,
    /// Dead-band width `β > 1`: no adaptation while
    /// `L_ideal/β ≤ L_exp ≤ β·L_ideal`.
    pub beta: f64,
    /// The reference ideal probe load `L_ideal` (a large constant known to
    /// all nodes).
    pub l_ideal: f64,
    /// Minimal inter-probe-cycle delay `δ_min`.
    pub delta_min: SimDuration,
    /// Maximal inter-probe-cycle delay `δ_max`.
    pub delta_max: SimDuration,
    /// Initial inter-probe-cycle delay a CP starts with.
    pub initial_delay: SimDuration,
}

impl SappConfig {
    /// The paper's §3 values: `α_inc = 2`, `α_dec = 3/2`, `β = 3/2`,
    /// `L_ideal = 10⁶`, `δ_min = 0.02`, `δ_max = 10`; CPs start greedy at
    /// `δ_min`.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            cycle: ProbeCycleConfig::paper_default(),
            alpha_inc: 2.0,
            alpha_dec: 1.5,
            beta: 1.5,
            l_ideal: 1e6,
            delta_min: SimDuration::from_millis(20),
            delta_max: SimDuration::from_secs(10),
            initial_delay: SimDuration::from_millis(20),
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.cycle.validate()?;
        if self.alpha_inc <= 1.0 || !self.alpha_inc.is_finite() {
            return Err(ConfigError::new("alpha_inc must exceed 1"));
        }
        if self.alpha_dec <= 1.0 || !self.alpha_dec.is_finite() {
            return Err(ConfigError::new("alpha_dec must exceed 1"));
        }
        if self.beta <= 1.0 || !self.beta.is_finite() {
            return Err(ConfigError::new("beta must exceed 1"));
        }
        if self.l_ideal <= 0.0 || !self.l_ideal.is_finite() {
            return Err(ConfigError::new("l_ideal must be positive"));
        }
        if self.delta_min == SimDuration::ZERO {
            return Err(ConfigError::new("delta_min must be positive"));
        }
        if self.delta_max <= self.delta_min {
            return Err(ConfigError::new("delta_max must exceed delta_min"));
        }
        if self.initial_delay < self.delta_min || self.initial_delay > self.delta_max {
            return Err(ConfigError::new(
                "initial_delay must lie within [delta_min, delta_max]",
            ));
        }
        Ok(())
    }
}

/// Configuration of a SAPP device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SappDeviceConfig {
    /// The reference ideal probe load `L_ideal` (must match the CPs').
    pub l_ideal: f64,
    /// The device's private nominal probe load `L_nom` (probes/second it is
    /// willing to serve). The increment is `Δ = L_ideal / L_nom`.
    pub l_nom: f64,
}

impl SappDeviceConfig {
    /// The paper's values: `L_ideal = 10⁶`, `L_nom = 10` (so `Δ = 10⁵`).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            l_ideal: 1e6,
            l_nom: 10.0,
        }
    }

    /// The probe-counter increment `Δ = L_ideal / L_nom`, rounded to the
    /// nearest integer.
    #[must_use]
    pub fn delta(&self) -> u64 {
        (self.l_ideal / self.l_nom).round() as u64
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.l_ideal <= 0.0 || !self.l_ideal.is_finite() {
            return Err(ConfigError::new("l_ideal must be positive"));
        }
        if self.l_nom <= 0.0 || !self.l_nom.is_finite() {
            return Err(ConfigError::new("l_nom must be positive"));
        }
        if self.l_ideal < self.l_nom {
            return Err(ConfigError::new(
                "l_ideal must be at least l_nom (the paper assumes L_ideal >> L_nom)",
            ));
        }
        if self.delta() == 0 {
            return Err(ConfigError::new("delta rounds to zero"));
        }
        Ok(())
    }
}

/// Configuration of the device-controlled probe protocol (DCPP, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DcppConfig {
    /// Probe-cycle timing (same bounded retransmission as SAPP).
    pub cycle: ProbeCycleConfig,
    /// Minimal spacing between two consecutive probes at the device,
    /// `δ_min = 1/L_nom`.
    pub delta_min: SimDuration,
    /// Minimal delay a CP is asked to wait, `d_min = 1/f_max` (no CP need
    /// probe more often than `f_max`).
    pub d_min: SimDuration,
}

impl DcppConfig {
    /// The paper's §5 values: `δ_min = 0.1 s` (`L_nom = 10`) and
    /// `d_min = 0.5 s` (`f_max = 2`).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            cycle: ProbeCycleConfig::paper_default(),
            delta_min: SimDuration::from_millis(100),
            d_min: SimDuration::from_millis(500),
        }
    }

    /// The nominal device load `L_nom = 1/δ_min` in probes/second.
    #[must_use]
    pub fn l_nom(&self) -> f64 {
        1.0 / self.delta_min.as_secs_f64()
    }

    /// The maximal per-CP probe frequency `f_max = 1/d_min`.
    #[must_use]
    pub fn f_max(&self) -> f64 {
        1.0 / self.d_min.as_secs_f64()
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.cycle.validate()?;
        if self.delta_min == SimDuration::ZERO {
            return Err(ConfigError::new("delta_min must be positive"));
        }
        if self.d_min == SimDuration::ZERO {
            return Err(ConfigError::new("d_min must be positive"));
        }
        if self.d_min < self.delta_min {
            return Err(ConfigError::new(
                "d_min should be at least delta_min (a single CP may not exceed the device's total budget)",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        ProbeCycleConfig::paper_default().validate().unwrap();
        SappConfig::paper_default().validate().unwrap();
        SappDeviceConfig::paper_default().validate().unwrap();
        DcppConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn paper_cycle_constants() {
        let c = ProbeCycleConfig::paper_default();
        assert_eq!(c.tof, SimDuration::from_millis(22));
        assert_eq!(c.tos, SimDuration::from_millis(21));
        assert_eq!(c.max_retransmissions, 3);
        // Worst-case detection: 0.022 + 3 * 0.021 = 0.085 s — the paper's
        // "in the order of one second" requirement is easily met.
        assert_eq!(c.worst_case_detection(), SimDuration::from_millis(85));
    }

    #[test]
    fn sapp_device_delta() {
        let d = SappDeviceConfig::paper_default();
        assert_eq!(d.delta(), 100_000);
    }

    #[test]
    fn dcpp_derived_rates() {
        let c = DcppConfig::paper_default();
        assert!((c.l_nom() - 10.0).abs() < 1e-9);
        assert!((c.f_max() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_rejects_tos_above_tof() {
        let mut c = ProbeCycleConfig::paper_default();
        c.tos = SimDuration::from_millis(30);
        assert!(c.validate().is_err());
    }

    #[test]
    fn cycle_rejects_zero_timeouts() {
        let mut c = ProbeCycleConfig::paper_default();
        c.tof = SimDuration::ZERO;
        assert!(c.validate().is_err());
        let mut c = ProbeCycleConfig::paper_default();
        c.tos = SimDuration::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sapp_rejects_bad_factors() {
        for f in [0.5, 1.0, f64::NAN, f64::INFINITY] {
            let mut c = SappConfig::paper_default();
            c.alpha_inc = f;
            assert!(c.validate().is_err(), "alpha_inc = {f} accepted");
            let mut c = SappConfig::paper_default();
            c.alpha_dec = f;
            assert!(c.validate().is_err(), "alpha_dec = {f} accepted");
            let mut c = SappConfig::paper_default();
            c.beta = f;
            assert!(c.validate().is_err(), "beta = {f} accepted");
        }
    }

    #[test]
    fn sapp_rejects_inverted_delays() {
        let mut c = SappConfig::paper_default();
        c.delta_max = SimDuration::from_millis(10);
        assert!(c.validate().is_err());
    }

    #[test]
    fn sapp_rejects_out_of_band_initial_delay() {
        let mut c = SappConfig::paper_default();
        c.initial_delay = SimDuration::from_secs(100);
        assert!(c.validate().is_err());
    }

    #[test]
    fn sapp_device_rejects_inverted_loads() {
        let mut c = SappDeviceConfig::paper_default();
        c.l_nom = 1e7; // above l_ideal
        assert!(c.validate().is_err());
    }

    #[test]
    fn dcpp_rejects_d_min_below_delta_min() {
        let mut c = DcppConfig::paper_default();
        c.d_min = SimDuration::from_millis(50);
        assert!(c.validate().is_err());
    }

    #[test]
    fn configs_serde_roundtrip() {
        let c = SappConfig::paper_default();
        let json = serde_json::to_string(&c).unwrap();
        let back: SappConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);

        let d = DcppConfig::paper_default();
        let json = serde_json::to_string(&d).unwrap();
        let back: DcppConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
