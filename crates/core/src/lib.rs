//! # presence-core
//!
//! Sans-io implementations of the node-presence probe protocols from
//! *"Are You Still There? — A Lightweight Algorithm To Monitor Node
//! Presence in Self-Configuring Networks"* (Bohnenkamp, Gorter, Guidi,
//! Katoen; DSN 2005):
//!
//! * **SAPP** — the self-adaptive probe protocol of Bodlaender et al.
//!   ([`SappDevice`], [`SappCp`]): devices expose a Δ-scaled probe counter,
//!   CPs estimate the experienced load and adapt their probing delay
//!   multiplicatively. The paper shows this protocol is *unfair* (CPs
//!   starve, frequencies oscillate).
//! * **DCPP** — the device-controlled probe protocol, the paper's
//!   contribution ([`DcppDevice`], [`DcppCp`]): the device schedules every
//!   prober explicitly, guaranteeing a load cap of `L_nom = 1/δ_min` and
//!   near-equal per-CP frequencies.
//!
//! Plus the substrate both share and the baselines the evaluation compares
//! against:
//!
//! * the bounded-retransmission probe cycle ([`Retransmitter`]; TOF/TOS
//!   timeouts, max 3 retransmissions, Fig. 1);
//! * the CP overlay and leave-notice dissemination ([`OverlayView`],
//!   [`Disseminator`]) that the paper describes but defers;
//! * baseline detectors: naive fixed-rate probing ([`FixedRateCp`]),
//!   push heartbeats ([`HeartbeatDevice`], [`HeartbeatMonitor`]), and a
//!   φ-accrual detector ([`PhiAccrualDetector`]).
//!
//! ## Sans-io design
//!
//! Every state machine is pure: inputs are `(now, event)`, outputs are
//! [`CpAction`]s the driver executes. The same code runs under the
//! deterministic discrete-event simulator (`presence-sim`) and the
//! wall-clock UDP runtime (`presence-runtime`). See [`Prober`] for the
//! driver contract.
//!
//! ## Quick example
//!
//! ```
//! use presence_core::{
//!     CpAction, CpId, DcppConfig, DcppCp, DcppDevice, DeviceId, Prober,
//! };
//! use presence_des::SimTime;
//!
//! let mut device = DcppDevice::new(DeviceId(0), DcppConfig::paper_default());
//! let mut cp = DcppCp::new(CpId(1), DcppConfig::paper_default());
//!
//! // CP emits its first probe…
//! let mut actions = Vec::new();
//! cp.start(SimTime::ZERO, &mut actions);
//! let probe = actions
//!     .iter()
//!     .find_map(|a| match a {
//!         CpAction::SendProbe(p) => Some(*p),
//!         _ => None,
//!     })
//!     .unwrap();
//!
//! // …the device schedules it and replies with a wait time…
//! let reply = device.on_probe(SimTime::ZERO, probe);
//!
//! // …and the CP obeys, sleeping exactly that long.
//! actions.clear();
//! cp.on_reply(SimTime::ZERO, &reply, &mut actions);
//! assert!(cp.current_delay().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod config;
mod cycle;
mod dcpp;
mod error;
mod overlay;
mod prober;
mod responder;
mod sapp;
mod types;

pub use baseline::{
    FixedRateCp, Heartbeat, HeartbeatDevice, HeartbeatMonitor, PhiAccrualDetector, PhiConfig,
};
pub use config::{DcppConfig, ProbeCycleConfig, SappConfig, SappDeviceConfig};
pub use cycle::{ReplyDisposition, Retransmitter, TimerDisposition};
pub use dcpp::{DcppCp, DcppDevice};
pub use error::ConfigError;
pub use overlay::{Disseminator, NoticeDisposition, OverlayView};
pub use prober::Prober;
pub use responder::Responder;
pub use sapp::{AdaptationStats, AutoTuneConfig, AutoTuner, SappCp, SappDevice, TuneDecision};
pub use types::{
    AbsenceReason, Bye, CpAction, CpId, CpStats, DeviceId, LeaveNotice, Probe, Reply, ReplyBody,
    TimerToken, Verdict, WireMessage,
};
