//! Baseline presence/failure detectors the evaluation compares against.

mod fixed_rate;
mod heartbeat;
mod phi;

pub use fixed_rate::FixedRateCp;
pub use heartbeat::{Heartbeat, HeartbeatDevice, HeartbeatMonitor};
pub use phi::{PhiAccrualDetector, PhiConfig};
