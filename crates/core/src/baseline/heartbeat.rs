//! Push-style heartbeat detection, for contrast with the paper's
//! pull-style probing.
//!
//! The paper's related work (failure detectors, group membership) includes
//! the classic push design: the monitored node periodically *announces*
//! itself and a monitor suspects it after a silence longer than a timeout.
//! Implementing it lets the benches compare message cost and detection
//! latency against SAPP/DCPP on the same scenarios.

use crate::types::DeviceId;
use presence_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The emitting side: a device that sends a heartbeat every `interval`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatDevice {
    id: DeviceId,
    interval: SimDuration,
    next_at: SimTime,
    sent: u64,
}

impl HeartbeatDevice {
    /// Creates a device heartbeating every `interval`, first beat at
    /// `start + interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn new(id: DeviceId, start: SimTime, interval: SimDuration) -> Self {
        assert!(interval > SimDuration::ZERO, "interval must be positive");
        Self {
            id,
            interval,
            next_at: start + interval,
            sent: 0,
        }
    }

    /// The device's identity.
    #[must_use]
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// When the next heartbeat is due.
    #[must_use]
    pub fn next_heartbeat_at(&self) -> SimTime {
        self.next_at
    }

    /// Emits the heartbeat due at `now` (the driver calls this when its
    /// timer fires) and schedules the next one.
    ///
    /// # Panics
    ///
    /// Panics if called before the heartbeat is due (a driver bug).
    pub fn emit(&mut self, now: SimTime) -> Heartbeat {
        assert!(now >= self.next_at, "heartbeat emitted early");
        self.sent += 1;
        self.next_at = now + self.interval;
        Heartbeat {
            device: self.id,
            seq: self.sent,
        }
    }

    /// Heartbeats sent so far.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

/// One heartbeat announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// The announcing device.
    pub device: DeviceId,
    /// Monotone per-device sequence number.
    pub seq: u64,
}

/// The monitoring side: suspects the device after `timeout` of silence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatMonitor {
    device: DeviceId,
    timeout: SimDuration,
    last_seen: Option<SimTime>,
    received: u64,
    /// Highest sequence seen, for duplicate/duplicate-path suppression.
    last_seq: u64,
}

impl HeartbeatMonitor {
    /// Creates a monitor that suspects `device` after `timeout` of silence.
    ///
    /// A common choice is `timeout = k · interval` for small `k` (e.g. 3):
    /// tolerate `k − 1` lost heartbeats.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    #[must_use]
    pub fn new(device: DeviceId, timeout: SimDuration) -> Self {
        assert!(timeout > SimDuration::ZERO, "timeout must be positive");
        Self {
            device,
            timeout,
            last_seen: None,
            received: 0,
            last_seq: 0,
        }
    }

    /// Records a heartbeat arrival. Heartbeats from other devices or with
    /// stale sequence numbers are ignored (returns `false`).
    pub fn on_heartbeat(&mut self, now: SimTime, hb: Heartbeat) -> bool {
        if hb.device != self.device || hb.seq <= self.last_seq {
            return false;
        }
        self.last_seq = hb.seq;
        self.last_seen = Some(now);
        self.received += 1;
        true
    }

    /// Whether the device is currently suspected (no heartbeat within the
    /// timeout). Before the first heartbeat the device is *not* suspected —
    /// the monitor is still synchronising.
    #[must_use]
    pub fn is_suspected(&self, now: SimTime) -> bool {
        match self.last_seen {
            None => false,
            Some(seen) => now.saturating_since(seen) > self.timeout,
        }
    }

    /// The earliest instant at which the device becomes suspected if no
    /// further heartbeat arrives; `None` before the first heartbeat.
    #[must_use]
    pub fn suspicion_deadline(&self) -> Option<SimTime> {
        self.last_seen.map(|seen| seen + self.timeout)
    }

    /// Heartbeats accepted so far.
    #[must_use]
    pub fn received(&self) -> u64 {
        self.received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn device_emits_on_schedule() {
        let mut d = HeartbeatDevice::new(DeviceId(0), t(0.0), SimDuration::from_secs(1));
        assert_eq!(d.next_heartbeat_at(), t(1.0));
        let hb = d.emit(t(1.0));
        assert_eq!(hb.seq, 1);
        assert_eq!(d.next_heartbeat_at(), t(2.0));
        assert_eq!(d.sent(), 1);
    }

    #[test]
    #[should_panic(expected = "early")]
    fn early_emit_panics() {
        let mut d = HeartbeatDevice::new(DeviceId(0), t(0.0), SimDuration::from_secs(1));
        d.emit(t(0.5));
    }

    #[test]
    fn monitor_suspects_after_silence() {
        let mut m = HeartbeatMonitor::new(DeviceId(0), SimDuration::from_secs(3));
        assert!(!m.is_suspected(t(100.0)), "no suspicion before first beat");
        assert!(m.on_heartbeat(
            t(1.0),
            Heartbeat {
                device: DeviceId(0),
                seq: 1
            }
        ));
        assert!(!m.is_suspected(t(3.9)));
        assert!(m.is_suspected(t(4.1)));
        assert_eq!(m.suspicion_deadline(), Some(t(4.0)));
    }

    #[test]
    fn heartbeat_refreshes_deadline() {
        let mut m = HeartbeatMonitor::new(DeviceId(0), SimDuration::from_secs(3));
        m.on_heartbeat(
            t(1.0),
            Heartbeat {
                device: DeviceId(0),
                seq: 1,
            },
        );
        m.on_heartbeat(
            t(2.0),
            Heartbeat {
                device: DeviceId(0),
                seq: 2,
            },
        );
        assert!(!m.is_suspected(t(4.5)));
        assert_eq!(m.suspicion_deadline(), Some(t(5.0)));
        assert_eq!(m.received(), 2);
    }

    #[test]
    fn ignores_foreign_and_stale_beats() {
        let mut m = HeartbeatMonitor::new(DeviceId(0), SimDuration::from_secs(3));
        assert!(!m.on_heartbeat(
            t(1.0),
            Heartbeat {
                device: DeviceId(9),
                seq: 1
            }
        ));
        assert!(m.on_heartbeat(
            t(1.0),
            Heartbeat {
                device: DeviceId(0),
                seq: 5
            }
        ));
        // Replayed/reordered older beat.
        assert!(!m.on_heartbeat(
            t(2.0),
            Heartbeat {
                device: DeviceId(0),
                seq: 4
            }
        ));
        assert_eq!(m.received(), 1);
    }

    #[test]
    fn tolerates_k_minus_one_losses() {
        // interval 1 s, timeout 3 s → up to 2 consecutive losses survive.
        let mut d = HeartbeatDevice::new(DeviceId(0), t(0.0), SimDuration::from_secs(1));
        let mut m = HeartbeatMonitor::new(DeviceId(0), SimDuration::from_secs(3));
        let hb = d.emit(t(1.0));
        m.on_heartbeat(t(1.0), hb);
        let _lost1 = d.emit(t(2.0));
        let _lost2 = d.emit(t(3.0));
        assert!(!m.is_suspected(t(3.9)));
        let hb = d.emit(t(4.0));
        m.on_heartbeat(t(4.0), hb);
        assert!(!m.is_suspected(t(6.9)));
    }
}
