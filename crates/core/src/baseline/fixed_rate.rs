//! The naive baseline: probe at a fixed rate.
//!
//! This is the "simplest scheme one could consider" that the paper's
//! introduction dismisses because it "easily leads to over- or underloading
//! of devices": with `k` CPs probing a device at period `T`, the device
//! load is `k/T` regardless of what the device can sustain. Experiment A3
//! measures exactly that against SAPP and DCPP.

use crate::config::ProbeCycleConfig;
use crate::cycle::{ReplyDisposition, Retransmitter, TimerDisposition};
use crate::prober::Prober;
use crate::types::{AbsenceReason, CpAction, CpId, CpStats, Reply, TimerToken, Verdict};
use presence_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Phase {
    NotStarted,
    Probing,
    Sleeping,
    Stopped,
}

/// A control point that probes with a fixed inter-cycle period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedRateCp {
    retx: Retransmitter,
    period: SimDuration,
    phase: Phase,
    wake: Option<TimerToken>,
    /// The terminal verdict, once reached.
    verdict: Option<Verdict>,
}

impl FixedRateCp {
    /// Creates a CP probing every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or the cycle configuration is invalid.
    #[must_use]
    pub fn new(cp: CpId, cycle: ProbeCycleConfig, period: SimDuration) -> Self {
        assert!(period > SimDuration::ZERO, "period must be positive");
        Self {
            retx: Retransmitter::new(cp, cycle),
            period,
            phase: Phase::NotStarted,
            wake: None,
            verdict: None,
        }
    }

    /// The fixed probing period.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.period
    }

    fn declare_absent(&mut self, now: SimTime, reason: AbsenceReason, out: &mut Vec<CpAction>) {
        self.phase = Phase::Stopped;
        self.verdict = Some(Verdict { at: now, reason });
        if let Some(token) = self.wake.take() {
            out.push(CpAction::CancelTimer { token });
        }
        self.retx.abort(out);
        out.push(CpAction::DeviceAbsent { at: now, reason });
    }
}

impl Prober for FixedRateCp {
    fn cp(&self) -> CpId {
        self.retx.cp()
    }

    fn start(&mut self, now: SimTime, out: &mut Vec<CpAction>) {
        assert!(
            self.phase == Phase::NotStarted,
            "start called twice on FixedRateCp"
        );
        self.phase = Phase::Probing;
        self.retx.begin_cycle(now, out);
    }

    fn on_reply(&mut self, now: SimTime, reply: &Reply, out: &mut Vec<CpAction>) {
        if self.phase == Phase::Stopped || reply.probe.cp != self.retx.cp() {
            return;
        }
        // Any reply body is acceptable: the baseline ignores payloads.
        match self.retx.on_reply(now, reply.probe.seq, now, out) {
            ReplyDisposition::Accepted { .. } => {
                let token = self.retx.mint_token();
                self.wake = Some(token);
                self.phase = Phase::Sleeping;
                out.push(CpAction::StartTimer {
                    token,
                    after: self.period,
                });
            }
            ReplyDisposition::Stale => {}
        }
    }

    fn on_timer(&mut self, now: SimTime, token: TimerToken, out: &mut Vec<CpAction>) {
        if self.phase == Phase::Stopped {
            return;
        }
        if self.wake == Some(token) {
            self.wake = None;
            self.phase = Phase::Probing;
            self.retx.begin_cycle(now, out);
            return;
        }
        match self.retx.on_timer(now, token, out) {
            TimerDisposition::CycleFailed => {
                self.declare_absent(now, AbsenceReason::ProbeTimeout, out);
            }
            TimerDisposition::Retransmitted | TimerDisposition::NotMine => {}
        }
    }

    fn on_bye(&mut self, now: SimTime, out: &mut Vec<CpAction>) {
        if self.phase != Phase::Stopped {
            self.declare_absent(now, AbsenceReason::ByeReceived, out);
        }
    }

    fn on_leave_notice(&mut self, now: SimTime, out: &mut Vec<CpAction>) {
        if self.phase != Phase::Stopped {
            self.declare_absent(now, AbsenceReason::NoticeReceived, out);
        }
    }

    fn stats(&self) -> &CpStats {
        self.retx.stats()
    }

    fn is_stopped(&self) -> bool {
        self.phase == Phase::Stopped
    }

    fn verdict(&self) -> Option<Verdict> {
        self.verdict
    }

    fn current_delay(&self) -> Option<SimDuration> {
        Some(self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DeviceId, ReplyBody};

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn cp(period_ms: u64) -> FixedRateCp {
        FixedRateCp::new(
            CpId(0),
            ProbeCycleConfig::paper_default(),
            SimDuration::from_millis(period_ms),
        )
    }

    fn reply_to(out: &[CpAction]) -> Reply {
        let probe = out
            .iter()
            .find_map(|a| match a {
                CpAction::SendProbe(p) => Some(*p),
                _ => None,
            })
            .expect("no probe");
        Reply {
            probe,
            device: DeviceId(0),
            body: ReplyBody::Dcpp {
                wait: SimDuration::from_millis(999), // ignored by baseline
            },
        }
    }

    #[test]
    fn fixed_period_regardless_of_payload() {
        let mut c = cp(250);
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let r = reply_to(&out);
        out.clear();
        c.on_reply(t(0.001), &r, &mut out);
        let after = out
            .iter()
            .find_map(|a| match a {
                CpAction::StartTimer { after, .. } => Some(*after),
                _ => None,
            })
            .unwrap();
        assert_eq!(
            after,
            SimDuration::from_millis(250),
            "ignores the reply's wait"
        );
        assert_eq!(c.current_delay(), Some(SimDuration::from_millis(250)));
    }

    #[test]
    fn probes_again_after_wake() {
        let mut c = cp(100);
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let r = reply_to(&out);
        out.clear();
        c.on_reply(t(0.001), &r, &mut out);
        let wake = out
            .iter()
            .find_map(|a| match a {
                CpAction::StartTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        out.clear();
        c.on_timer(t(0.101), wake, &mut out);
        assert_eq!(c.stats().cycles_started, 2);
    }

    #[test]
    fn absence_detection_works() {
        let mut c = cp(100);
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let mut now = 0.022;
        for _ in 0..4 {
            let timer = out
                .iter()
                .find_map(|a| match a {
                    CpAction::StartTimer { token, .. } => Some(*token),
                    _ => None,
                })
                .unwrap();
            out.clear();
            c.on_timer(t(now), timer, &mut out);
            now += 0.021;
        }
        assert!(c.is_stopped());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = FixedRateCp::new(
            CpId(0),
            ProbeCycleConfig::paper_default(),
            SimDuration::ZERO,
        );
    }
}
