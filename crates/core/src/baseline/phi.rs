//! φ-accrual failure detection (Hayashibara et al., SRDS 2004).
//!
//! A contemporary of the paper and the design that "won" in practice
//! (Cassandra, Akka): instead of a binary alive/suspected verdict, the
//! detector outputs a continuous suspicion level
//!
//! ```text
//! φ(t_now) = −log₁₀ P(another heartbeat arrives after t_now)
//! ```
//!
//! under a normal model of inter-arrival times estimated from a sliding
//! window. Applications pick a threshold (φ = 8 ⇒ ~10⁻⁸ false-positive
//! probability per evaluation under the model). Implemented here as a
//! baseline comparator for detection-latency experiments (A4).

use crate::types::DeviceId;
use presence_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of a [`PhiAccrualDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhiConfig {
    /// Sliding-window size over inter-arrival intervals.
    pub window: usize,
    /// Suspicion threshold; 8–12 are typical production values.
    pub threshold: f64,
    /// Minimum standard deviation (guards against a degenerate, perfectly
    /// regular arrival history making the detector infinitely confident).
    pub min_std_dev: SimDuration,
}

impl Default for PhiConfig {
    fn default() -> Self {
        Self {
            window: 100,
            threshold: 8.0,
            min_std_dev: SimDuration::from_millis(10),
        }
    }
}

/// The φ-accrual failure detector for a single monitored device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhiAccrualDetector {
    device: DeviceId,
    cfg: PhiConfig,
    intervals: VecDeque<f64>,
    last_arrival: Option<SimTime>,
    arrivals: u64,
}

impl PhiAccrualDetector {
    /// Creates a detector for `device`.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero or the threshold non-positive.
    #[must_use]
    pub fn new(device: DeviceId, cfg: PhiConfig) -> Self {
        assert!(cfg.window > 0, "window must be positive");
        assert!(cfg.threshold > 0.0, "threshold must be positive");
        Self {
            device,
            cfg,
            intervals: VecDeque::with_capacity(cfg.window),
            last_arrival: None,
            arrivals: 0,
        }
    }

    /// The monitored device.
    #[must_use]
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Records a heartbeat (or any proof-of-life message) at `now`.
    pub fn on_arrival(&mut self, now: SimTime) {
        if let Some(last) = self.last_arrival {
            let dt = now.saturating_since(last).as_secs_f64();
            if self.intervals.len() == self.cfg.window {
                self.intervals.pop_front();
            }
            self.intervals.push_back(dt);
        }
        self.last_arrival = Some(now);
        self.arrivals += 1;
    }

    /// Arrivals recorded so far.
    #[must_use]
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Mean of the windowed inter-arrival intervals (seconds).
    #[must_use]
    pub fn mean_interval(&self) -> Option<f64> {
        if self.intervals.is_empty() {
            return None;
        }
        Some(self.intervals.iter().sum::<f64>() / self.intervals.len() as f64)
    }

    fn std_dev(&self) -> f64 {
        let n = self.intervals.len();
        if n < 2 {
            return self.cfg.min_std_dev.as_secs_f64();
        }
        let mean = self.mean_interval().expect("non-empty");
        let var = self
            .intervals
            .iter()
            .map(|x| (x - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt().max(self.cfg.min_std_dev.as_secs_f64())
    }

    /// The suspicion level φ at `now`; `0.0` until at least two arrivals
    /// establish an interval estimate.
    #[must_use]
    pub fn phi(&self, now: SimTime) -> f64 {
        let (Some(last), Some(mean)) = (self.last_arrival, self.mean_interval()) else {
            return 0.0;
        };
        let elapsed = now.saturating_since(last).as_secs_f64();
        let z = (elapsed - mean) / self.std_dev();
        // φ = −log10(1 − CDF(z)); use a stable tail approximation.
        -normal_tail(z).log10()
    }

    /// Whether φ currently exceeds the configured threshold.
    #[must_use]
    pub fn is_suspected(&self, now: SimTime) -> bool {
        self.phi(now) > self.cfg.threshold
    }
}

/// Upper-tail probability `P(Z > z)` of the standard normal, via the
/// logistic-family approximation used by the original φ-accrual paper's
/// reference implementations (accurate to ~1–2% over the relevant range,
/// and monotone — which is all a threshold detector needs).
fn normal_tail(z: f64) -> f64 {
    let e = (-z * (1.5976 + 0.070566 * z * z)).exp();
    if e.is_infinite() {
        return 1.0; // z very negative: the tail is all of the mass
    }
    (e / (1.0 + e)).clamp(f64::MIN_POSITIVE, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn detector() -> PhiAccrualDetector {
        PhiAccrualDetector::new(DeviceId(0), PhiConfig::default())
    }

    /// Feeds heartbeats every second from t=1 to t=n.
    fn feed_regular(d: &mut PhiAccrualDetector, n: u32) {
        for i in 1..=n {
            d.on_arrival(t(i as f64));
        }
    }

    #[test]
    fn phi_zero_before_history() {
        let d = detector();
        assert_eq!(d.phi(t(100.0)), 0.0);
        assert!(!d.is_suspected(t(100.0)));
    }

    #[test]
    fn phi_low_right_after_arrival() {
        let mut d = detector();
        feed_regular(&mut d, 30);
        let phi = d.phi(t(30.05));
        assert!(phi < 1.0, "phi right after a beat: {phi}");
        assert!(!d.is_suspected(t(30.05)));
    }

    #[test]
    fn phi_grows_monotonically_with_silence() {
        // Use jittery arrivals so the interval variance is real and phi
        // does not saturate within the probed silence range.
        let mut d = detector();
        for i in 1..=30 {
            let jitter = if i % 2 == 0 { 0.3 } else { -0.3 };
            d.on_arrival(t(i as f64 + jitter));
        }
        let p1 = d.phi(t(31.0));
        let p2 = d.phi(t(32.0));
        let p3 = d.phi(t(33.0));
        assert!(p1 < p2 && p2 < p3, "phi not monotone: {p1} {p2} {p3}");
    }

    #[test]
    fn crash_is_detected() {
        let mut d = detector();
        feed_regular(&mut d, 60);
        // Device crashes after t=60. Within a few intervals φ crosses 8.
        assert!(!d.is_suspected(t(60.5)));
        assert!(d.is_suspected(t(70.0)), "phi at t=70: {}", d.phi(t(70.0)));
    }

    #[test]
    fn jittery_arrivals_need_longer_silence() {
        // Higher variance → slower suspicion accrual at the same silence.
        let mut regular = detector();
        feed_regular(&mut regular, 50);

        let mut jittery = detector();
        for i in 1..=50 {
            let jitter = if i % 2 == 0 { 0.4 } else { -0.4 };
            jittery.on_arrival(t(i as f64 + jitter));
        }
        let silence_at = 55.0;
        assert!(
            regular.phi(t(silence_at)) > jittery.phi(t(silence_at)),
            "regular {} vs jittery {}",
            regular.phi(t(silence_at)),
            jittery.phi(t(silence_at))
        );
    }

    #[test]
    fn window_slides() {
        let cfg = PhiConfig {
            window: 5,
            ..PhiConfig::default()
        };
        let mut d = PhiAccrualDetector::new(DeviceId(0), cfg);
        // Ten 1-second intervals, then five 2-second intervals: the mean
        // should converge to 2, forgetting the old regime.
        let mut now = 0.0;
        for _ in 0..10 {
            now += 1.0;
            d.on_arrival(t(now));
        }
        for _ in 0..5 {
            now += 2.0;
            d.on_arrival(t(now));
        }
        let mean = d.mean_interval().unwrap();
        assert!((mean - 2.0).abs() < 1e-9, "windowed mean {mean}");
    }

    #[test]
    fn min_std_dev_guards_degenerate_history() {
        let mut d = detector();
        feed_regular(&mut d, 100); // perfectly regular
                                   // Even with zero empirical variance, phi must stay finite.
        let phi = d.phi(t(101.0));
        assert!(phi.is_finite(), "phi must be finite, got {phi}");
    }

    #[test]
    fn detection_latency_reasonable() {
        // With 1 s heartbeats, detection (phi > 8) should occur within a
        // handful of seconds of the crash — comparable to heartbeat
        // timeouts, far slower than SAPP/DCPP's 85 ms probe verdict.
        let mut d = detector();
        feed_regular(&mut d, 120);
        let mut detect_at = None;
        let mut now = 120.0;
        while now < 140.0 {
            now += 0.1;
            if d.is_suspected(t(now)) {
                detect_at = Some(now);
                break;
            }
        }
        let latency = detect_at.expect("never suspected") - 120.0;
        assert!(latency > 1.0 && latency < 15.0, "latency {latency}");
    }
}
