//! SAPP control-point behaviour (§2, "CP behavior" and "Adapting the
//! probing frequency").
//!
//! A CP runs probe cycles through the shared [`Retransmitter`] and adapts
//! its inter-cycle delay `δ` from the *experienced probe load*
//!
//! ```text
//! L_exp = (pc' − pc) / (t' − t)
//! ```
//!
//! computed over two consecutive successful probes, per Eq. (1):
//!
//! ```text
//! δ' = min(α_inc · δ, δ_max)   if L_exp > β · L_ideal
//! δ' = max(δ / α_dec, δ_min)   if L_exp < L_ideal / β
//! δ' = δ                        otherwise
//! ```
//!
//! This is the protocol the paper shows to be **unfair**: the experienced
//! load cannot distinguish "many CPs at medium rate" from "few CPs at high
//! rate", and greedy fast CPs grab freed bandwidth before slow CPs notice,
//! so some CPs starve at `δ_max` while others oscillate near `δ_min`.

use crate::config::SappConfig;
use crate::cycle::{ReplyDisposition, Retransmitter, TimerDisposition};
use crate::prober::Prober;
use crate::types::{AbsenceReason, CpAction, CpId, CpStats, Reply, ReplyBody, TimerToken, Verdict};
use presence_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Adaptation decisions taken so far (for analysis and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdaptationStats {
    /// Times the delay was lengthened (load too high).
    pub increases: u64,
    /// Times the delay was shortened (load too low).
    pub decreases: u64,
    /// Times the load was inside the dead band.
    pub holds: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Phase {
    /// `start` not called yet.
    NotStarted,
    /// A probe cycle is in flight.
    Probing,
    /// Waiting out the inter-cycle delay.
    Sleeping,
    /// The device was declared absent; the machine is inert.
    Stopped,
}

/// The control-point side of the self-adaptive probe protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SappCp {
    cfg: SappConfig,
    retx: Retransmitter,
    phase: Phase,
    /// Current inter-probe-cycle delay `δ`.
    delay: SimDuration,
    /// `(t, pc)` of the last successful probe — the anchor for `L_exp`.
    anchor: Option<(SimTime, u64)>,
    /// Outstanding wake timer, if sleeping.
    wake: Option<TimerToken>,
    /// Most recent experienced load estimate.
    last_lexp: Option<f64>,
    adaptation: AdaptationStats,
    /// Overlay peers gleaned from the last reply.
    peers: [Option<CpId>; 2],
    /// The terminal verdict, once reached.
    verdict: Option<Verdict>,
}

impl SappCp {
    /// Creates a CP that will probe one device.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; validate at the boundary with
    /// [`SappConfig::validate`] for a recoverable error.
    #[must_use]
    pub fn new(cp: CpId, cfg: SappConfig) -> Self {
        cfg.validate().expect("invalid SAPP configuration");
        Self {
            retx: Retransmitter::new(cp, cfg.cycle),
            cfg,
            phase: Phase::NotStarted,
            delay: cfg.initial_delay,
            anchor: None,
            wake: None,
            last_lexp: None,
            adaptation: AdaptationStats::default(),
            peers: [None, None],
            verdict: None,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SappConfig {
        &self.cfg
    }

    /// Current inter-cycle delay `δ`.
    #[must_use]
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Current probe frequency `1/δ` in probes per second.
    #[must_use]
    pub fn frequency(&self) -> f64 {
        1.0 / self.delay.as_secs_f64()
    }

    /// The most recent `L_exp` estimate, if two successful probes have
    /// completed.
    #[must_use]
    pub fn last_experienced_load(&self) -> Option<f64> {
        self.last_lexp
    }

    /// Adaptation decision counters.
    #[must_use]
    pub fn adaptation_stats(&self) -> AdaptationStats {
        self.adaptation
    }

    /// Overlay peers (last two distinct probers) learned from the most
    /// recent reply.
    #[must_use]
    pub fn peers(&self) -> [Option<CpId>; 2] {
        self.peers
    }

    /// Applies Eq. (1) to the current delay given an experienced load.
    fn adapt(&mut self, l_exp: f64) {
        self.last_lexp = Some(l_exp);
        if l_exp > self.cfg.beta * self.cfg.l_ideal {
            self.adaptation.increases += 1;
            let widened = self.delay.mul_f64(self.cfg.alpha_inc);
            self.delay = if widened > self.cfg.delta_max {
                self.cfg.delta_max
            } else {
                widened
            };
        } else if l_exp < self.cfg.l_ideal / self.cfg.beta {
            self.adaptation.decreases += 1;
            let shortened = self.delay.mul_f64(1.0 / self.cfg.alpha_dec);
            self.delay = if shortened < self.cfg.delta_min {
                self.cfg.delta_min
            } else {
                shortened
            };
        } else {
            self.adaptation.holds += 1;
        }
    }

    fn go_to_sleep(&mut self, out: &mut Vec<CpAction>) {
        let token = self.retx.mint_token();
        self.wake = Some(token);
        self.phase = Phase::Sleeping;
        out.push(CpAction::StartTimer {
            token,
            after: self.delay,
        });
    }

    fn declare_absent(&mut self, now: SimTime, reason: AbsenceReason, out: &mut Vec<CpAction>) {
        self.phase = Phase::Stopped;
        self.verdict = Some(Verdict { at: now, reason });
        if let Some(token) = self.wake.take() {
            out.push(CpAction::CancelTimer { token });
        }
        self.retx.abort(out);
        out.push(CpAction::DeviceAbsent { at: now, reason });
    }
}

impl Prober for SappCp {
    fn cp(&self) -> CpId {
        self.retx.cp()
    }

    fn start(&mut self, now: SimTime, out: &mut Vec<CpAction>) {
        assert!(
            self.phase == Phase::NotStarted,
            "start called twice on SappCp"
        );
        self.phase = Phase::Probing;
        self.retx.begin_cycle(now, out);
    }

    fn on_reply(&mut self, now: SimTime, reply: &Reply, out: &mut Vec<CpAction>) {
        if self.phase == Phase::Stopped || reply.probe.cp != self.retx.cp() {
            return;
        }
        let ReplyBody::Sapp { pc, last_probers } = reply.body else {
            debug_assert!(false, "SAPP CP received a non-SAPP reply");
            return;
        };
        match self.retx.on_reply(now, reply.probe.seq, now, out) {
            ReplyDisposition::Accepted { anchor, .. } => {
                self.peers = last_probers;
                if let Some((prev_t, prev_pc)) = self.anchor {
                    let dt = anchor.saturating_since(prev_t).as_secs_f64();
                    if dt > 0.0 {
                        let l_exp = (pc.saturating_sub(prev_pc)) as f64 / dt;
                        self.adapt(l_exp);
                    }
                }
                self.anchor = Some((anchor, pc));
                self.go_to_sleep(out);
            }
            ReplyDisposition::Stale => {}
        }
    }

    fn on_timer(&mut self, now: SimTime, token: TimerToken, out: &mut Vec<CpAction>) {
        if self.phase == Phase::Stopped {
            return;
        }
        if self.wake == Some(token) {
            self.wake = None;
            self.phase = Phase::Probing;
            self.retx.begin_cycle(now, out);
            return;
        }
        match self.retx.on_timer(now, token, out) {
            TimerDisposition::CycleFailed => {
                self.declare_absent(now, AbsenceReason::ProbeTimeout, out);
            }
            TimerDisposition::Retransmitted | TimerDisposition::NotMine => {}
        }
    }

    fn on_bye(&mut self, now: SimTime, out: &mut Vec<CpAction>) {
        if self.phase == Phase::Stopped {
            return;
        }
        self.declare_absent(now, AbsenceReason::ByeReceived, out);
    }

    fn on_leave_notice(&mut self, now: SimTime, out: &mut Vec<CpAction>) {
        if self.phase == Phase::Stopped {
            return;
        }
        self.declare_absent(now, AbsenceReason::NoticeReceived, out);
    }

    fn stats(&self) -> &CpStats {
        self.retx.stats()
    }

    fn is_stopped(&self) -> bool {
        self.phase == Phase::Stopped
    }

    fn verdict(&self) -> Option<Verdict> {
        self.verdict
    }

    fn current_delay(&self) -> Option<SimDuration> {
        Some(self.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DeviceId, Probe};

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn cp() -> SappCp {
        SappCp::new(CpId(1), SappConfig::paper_default())
    }

    fn sapp_reply(probe: Probe, pc: u64) -> Reply {
        Reply {
            probe,
            device: DeviceId(0),
            body: ReplyBody::Sapp {
                pc,
                last_probers: [None, None],
            },
        }
    }

    fn sent_probe(out: &[CpAction]) -> Probe {
        out.iter()
            .find_map(|a| match a {
                CpAction::SendProbe(p) => Some(*p),
                _ => None,
            })
            .expect("no probe in actions")
    }

    fn wake_delay(out: &[CpAction]) -> SimDuration {
        out.iter()
            .find_map(|a| match a {
                CpAction::StartTimer { after, .. } => Some(*after),
                _ => None,
            })
            .expect("no timer in actions")
    }

    /// Drives one successful probe cycle: start (or wake) has already sent
    /// the probe in `out`; feeds a reply with the given pc at `reply_t`.
    fn complete_cycle(
        cp: &mut SappCp,
        out: &mut Vec<CpAction>,
        pc: u64,
        reply_t: f64,
    ) -> SimDuration {
        let probe = sent_probe(out);
        out.clear();
        cp.on_reply(t(reply_t), &sapp_reply(probe, pc), out);
        wake_delay(out)
    }

    #[test]
    fn starts_by_probing_immediately() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let p = sent_probe(&out);
        assert_eq!(p.cp, CpId(1));
        assert_eq!(c.stats().cycles_started, 1);
    }

    #[test]
    fn first_reply_sets_anchor_without_adapting() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let d = complete_cycle(&mut c, &mut out, 100_000, 0.001);
        assert_eq!(d, c.config().initial_delay, "no adaptation on first reply");
        assert!(c.last_experienced_load().is_none());
    }

    #[test]
    fn overload_increases_delay() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        complete_cycle(&mut c, &mut out, 100_000, 0.001);
        // Wake and run a second cycle. Make pc jump so hard that
        // L_exp > beta * L_ideal = 1.5e6.
        let wake = out
            .iter()
            .find_map(|a| match a {
                CpAction::StartTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        out.clear();
        c.on_timer(t(0.021), wake, &mut out);
        // 1.0 s later: Δpc = 2_000_000 over ~1.02 s → ~1.96e6 > 1.5e6.
        let d = complete_cycle(&mut c, &mut out, 2_100_000, 1.021);
        let expected = c.config().initial_delay.mul_f64(c.config().alpha_inc);
        assert_eq!(d, expected, "delay doubled by alpha_inc");
        assert_eq!(c.adaptation_stats().increases, 1);
        assert!(c.last_experienced_load().unwrap() > 1.5e6);
    }

    #[test]
    fn underload_decreases_delay() {
        let mut cfg = SappConfig::paper_default();
        cfg.initial_delay = SimDuration::from_secs(1);
        let mut c = SappCp::new(CpId(1), cfg);
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        complete_cycle(&mut c, &mut out, 100_000, 0.001);
        let wake = out
            .iter()
            .find_map(|a| match a {
                CpAction::StartTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        out.clear();
        c.on_timer(t(1.001), wake, &mut out);
        // Δpc = 100_000 over ~1 s → 1e5 < L_ideal/beta ≈ 6.67e5 → shorten.
        let d = complete_cycle(&mut c, &mut out, 200_000, 2.002);
        let expected = SimDuration::from_secs(1).mul_f64(1.0 / 1.5);
        assert_eq!(d, expected);
        assert_eq!(c.adaptation_stats().decreases, 1);
    }

    #[test]
    fn dead_band_holds_delay() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        complete_cycle(&mut c, &mut out, 100_000, 0.001);
        let wake = out
            .iter()
            .find_map(|a| match a {
                CpAction::StartTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        out.clear();
        c.on_timer(t(0.021), wake, &mut out);
        // Δpc = 1_000_000 over ~1.0 s → 1e6 = L_ideal: inside dead band.
        let d = complete_cycle(&mut c, &mut out, 1_100_000, 1.001);
        assert_eq!(d, c.config().initial_delay);
        assert_eq!(c.adaptation_stats().holds, 1);
    }

    #[test]
    fn delay_clamped_at_delta_max() {
        let mut cfg = SappConfig::paper_default();
        cfg.initial_delay = SimDuration::from_secs(8);
        let mut c = SappCp::new(CpId(1), cfg);
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        complete_cycle(&mut c, &mut out, 100_000, 0.001);
        let wake = out
            .iter()
            .find_map(|a| match a {
                CpAction::StartTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        out.clear();
        c.on_timer(t(8.001), wake, &mut out);
        // Overload: would double 8 → 16, clamped at δ_max = 10.
        let d = complete_cycle(&mut c, &mut out, 100_000_000, 9.0);
        assert_eq!(d, cfg.delta_max);
    }

    #[test]
    fn delay_clamped_at_delta_min() {
        let mut c = cp(); // initial = δ_min already
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        complete_cycle(&mut c, &mut out, 100_000, 0.001);
        let wake = out
            .iter()
            .find_map(|a| match a {
                CpAction::StartTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        out.clear();
        c.on_timer(t(10.0), wake, &mut out);
        // Underload over 10 s → would shorten below δ_min, clamped.
        let d = complete_cycle(&mut c, &mut out, 200_000, 20.0);
        assert_eq!(d, c.config().delta_min);
    }

    #[test]
    fn four_timeouts_declare_absent() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let mut now = 0.022;
        for _ in 0..4 {
            let timer = out
                .iter()
                .find_map(|a| match a {
                    CpAction::StartTimer { token, .. } => Some(*token),
                    _ => None,
                })
                .unwrap();
            out.clear();
            c.on_timer(t(now), timer, &mut out);
            now += 0.021;
        }
        assert!(c.is_stopped());
        assert!(out.iter().any(|a| matches!(
            a,
            CpAction::DeviceAbsent {
                reason: AbsenceReason::ProbeTimeout,
                ..
            }
        )));
    }

    #[test]
    fn bye_stops_probing() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        out.clear();
        c.on_bye(t(0.5), &mut out);
        assert!(c.is_stopped());
        assert!(out.iter().any(|a| matches!(
            a,
            CpAction::DeviceAbsent {
                reason: AbsenceReason::ByeReceived,
                ..
            }
        )));
        // Further events are inert.
        out.clear();
        c.on_timer(t(1.0), TimerToken(0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn leave_notice_stops_probing() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        out.clear();
        c.on_leave_notice(t(0.5), &mut out);
        assert!(c.is_stopped());
    }

    #[test]
    fn reply_for_other_cp_ignored() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let probe = sent_probe(&out);
        out.clear();
        let foreign = Reply {
            probe: Probe {
                cp: CpId(99),
                seq: probe.seq,
            },
            device: DeviceId(0),
            body: ReplyBody::Sapp {
                pc: 100_000,
                last_probers: [None, None],
            },
        };
        c.on_reply(t(0.001), &foreign, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn peers_learned_from_reply() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let probe = sent_probe(&out);
        out.clear();
        let reply = Reply {
            probe,
            device: DeviceId(0),
            body: ReplyBody::Sapp {
                pc: 100_000,
                last_probers: [Some(CpId(4)), Some(CpId(9))],
            },
        };
        c.on_reply(t(0.001), &reply, &mut out);
        assert_eq!(c.peers(), [Some(CpId(4)), Some(CpId(9))]);
    }

    #[test]
    fn frequency_is_delay_inverse() {
        let c = cp();
        assert!((c.frequency() - 50.0).abs() < 1e-9, "1/0.02 = 50");
    }

    #[test]
    #[should_panic(expected = "start called twice")]
    fn double_start_panics() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        c.start(t(1.0), &mut out);
    }
}
