//! SAPP device behaviour (§2, "Device behavior").
//!
//! A device maintains a probe counter `pc`, incremented by `Δ = L_ideal /
//! L_nom` on every probe. The reply carries the updated `pc`; CPs derive
//! the experienced load from successive `pc` values. Because `Δ` is private
//! to the device it can steer its own load: doubling `Δ` makes CPs perceive
//! the device as twice as busy and (eventually) halves the real probe load.

use crate::config::SappDeviceConfig;
use crate::types::{CpId, DeviceId, Probe, Reply, ReplyBody};
use presence_des::SimTime;
use serde::{Deserialize, Serialize};

/// The device side of the self-adaptive probe protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SappDevice {
    id: DeviceId,
    cfg: SappDeviceConfig,
    /// The probe counter `pc`.
    pc: u64,
    /// The current increment `Δ` (starts at `cfg.delta()`, may be retuned).
    delta: u64,
    /// Last two *distinct* probing CPs, most recent first. Returned on each
    /// reply so CPs can organise the dissemination overlay.
    last_probers: [Option<CpId>; 2],
    /// Total probes answered.
    probes_received: u64,
    /// Time of the most recent probe (for load bookkeeping).
    last_probe_at: Option<SimTime>,
}

impl SappDevice {
    /// Creates a device with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; validate at the boundary with
    /// [`SappDeviceConfig::validate`] for a recoverable error.
    #[must_use]
    pub fn new(id: DeviceId, cfg: SappDeviceConfig) -> Self {
        cfg.validate().expect("invalid SAPP device configuration");
        Self {
            id,
            cfg,
            pc: 0,
            delta: cfg.delta(),
            last_probers: [None, None],
            probes_received: 0,
            last_probe_at: None,
        }
    }

    /// The device's identity.
    #[must_use]
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Current probe-counter value.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Current increment `Δ`.
    #[must_use]
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Total probes answered.
    #[must_use]
    pub fn probes_received(&self) -> u64 {
        self.probes_received
    }

    /// Handles a probe arriving at `now`: increments `pc` by `Δ`, updates
    /// the last-probers list, and produces the reply.
    pub fn on_probe(&mut self, now: SimTime, probe: Probe) -> Reply {
        self.pc = self.pc.saturating_add(self.delta);
        self.probes_received += 1;
        self.last_probe_at = Some(now);
        let reply = Reply {
            probe,
            device: self.id,
            body: ReplyBody::Sapp {
                pc: self.pc,
                // The overlay links returned are the probers *before* this
                // probe, so a CP learns of peers other than itself whenever
                // possible.
                last_probers: self.last_probers,
            },
        };
        self.note_prober(probe.cp);
        reply
    }

    /// Records `cp` as the most recent prober, keeping the list to the last
    /// two *distinct* CPs.
    fn note_prober(&mut self, cp: CpId) {
        if self.last_probers[0] == Some(cp) {
            return; // same CP again: list unchanged
        }
        self.last_probers[1] = self.last_probers[0];
        self.last_probers[0] = Some(cp);
    }

    /// Doubles `Δ` — the paper's example of device-side load control: "If
    /// the device finds that it is getting too many probes, it can, say,
    /// double its value of Δ. […] The probe load of the device will, in
    /// this example, eventually drop to one half of its previous value."
    pub fn double_delta(&mut self) {
        self.delta = self.delta.saturating_mul(2);
    }

    /// Retunes the nominal load to `l_nom`, recomputing `Δ = L_ideal/L_nom`.
    ///
    /// # Panics
    ///
    /// Panics if `l_nom` is not strictly positive and finite or exceeds
    /// `L_ideal`.
    pub fn set_l_nom(&mut self, l_nom: f64) {
        let cfg = SappDeviceConfig { l_nom, ..self.cfg };
        cfg.validate().expect("invalid retuned l_nom");
        self.cfg = cfg;
        self.delta = cfg.delta();
    }

    /// The configured nominal load.
    #[must_use]
    pub fn l_nom(&self) -> f64 {
        self.cfg.l_nom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Probe;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn device() -> SappDevice {
        SappDevice::new(DeviceId(0), SappDeviceConfig::paper_default())
    }

    fn probe(cp: u32, seq: u64) -> Probe {
        Probe { cp: CpId(cp), seq }
    }

    #[test]
    fn pc_increments_by_delta() {
        let mut d = device();
        assert_eq!(d.delta(), 100_000);
        let r1 = d.on_probe(t(0.0), probe(1, 0));
        match r1.body {
            ReplyBody::Sapp { pc, .. } => assert_eq!(pc, 100_000),
            other => panic!("{other:?}"),
        }
        let r2 = d.on_probe(t(0.1), probe(2, 0));
        match r2.body {
            ReplyBody::Sapp { pc, .. } => assert_eq!(pc, 200_000),
            other => panic!("{other:?}"),
        }
        assert_eq!(d.probes_received(), 2);
    }

    #[test]
    fn reply_echoes_probe_identity() {
        let mut d = device();
        let p = probe(7, 42);
        let r = d.on_probe(t(0.0), p);
        assert_eq!(r.probe, p);
        assert_eq!(r.device, DeviceId(0));
    }

    #[test]
    fn last_probers_track_distinct_cps() {
        let mut d = device();
        // First prober sees an empty list.
        let r = d.on_probe(t(0.0), probe(1, 0));
        match r.body {
            ReplyBody::Sapp { last_probers, .. } => {
                assert_eq!(last_probers, [None, None]);
            }
            other => panic!("{other:?}"),
        }
        // Second prober sees the first.
        let r = d.on_probe(t(0.1), probe(2, 0));
        match r.body {
            ReplyBody::Sapp { last_probers, .. } => {
                assert_eq!(last_probers, [Some(CpId(1)), None]);
            }
            other => panic!("{other:?}"),
        }
        // Third prober sees the last two, most recent first.
        let r = d.on_probe(t(0.2), probe(3, 0));
        match r.body {
            ReplyBody::Sapp { last_probers, .. } => {
                assert_eq!(last_probers, [Some(CpId(2)), Some(CpId(1))]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn repeat_prober_does_not_duplicate() {
        let mut d = device();
        d.on_probe(t(0.0), probe(1, 0));
        d.on_probe(t(0.1), probe(1, 1));
        d.on_probe(t(0.2), probe(1, 2));
        let r = d.on_probe(t(0.3), probe(2, 0));
        match r.body {
            ReplyBody::Sapp { last_probers, .. } => {
                assert_eq!(last_probers, [Some(CpId(1)), None]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn alternating_probers() {
        let mut d = device();
        d.on_probe(t(0.0), probe(1, 0));
        d.on_probe(t(0.1), probe(2, 0));
        d.on_probe(t(0.2), probe(1, 1));
        let r = d.on_probe(t(0.3), probe(3, 0));
        match r.body {
            ReplyBody::Sapp { last_probers, .. } => {
                assert_eq!(last_probers, [Some(CpId(1)), Some(CpId(2))]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn double_delta_doubles() {
        let mut d = device();
        d.double_delta();
        assert_eq!(d.delta(), 200_000);
        let r = d.on_probe(t(0.0), probe(1, 0));
        match r.body {
            ReplyBody::Sapp { pc, .. } => assert_eq!(pc, 200_000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn set_l_nom_recomputes_delta() {
        let mut d = device();
        d.set_l_nom(5.0);
        assert_eq!(d.delta(), 200_000);
        assert!((d.l_nom() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid retuned l_nom")]
    fn set_l_nom_rejects_garbage() {
        let mut d = device();
        d.set_l_nom(-1.0);
    }

    #[test]
    fn pc_saturates_instead_of_wrapping() {
        let mut d = device();
        d.pc = u64::MAX - 1;
        d.on_probe(t(0.0), probe(1, 0));
        assert_eq!(d.pc(), u64::MAX);
    }
}
