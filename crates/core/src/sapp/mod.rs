//! The self-adaptive probe protocol (SAPP), §2 of the paper.

mod cp;
mod device;
mod tuner;

pub use cp::{AdaptationStats, SappCp};
pub use device::SappDevice;
pub use tuner::{AutoTuneConfig, AutoTuner, TuneDecision};
