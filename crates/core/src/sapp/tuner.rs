//! Automatic device-side load control for SAPP.
//!
//! §2 of the paper says a device's Δ "may change during execution" and
//! sketches the mechanism: "If the device finds that it is getting too
//! many probes, it can, say, double its value of Δ." The paper never
//! specifies *when* a device should decide that; this module supplies the
//! natural closed loop — measure the recent probe rate, double Δ when it
//! exceeds the nominal budget by a margin, and halve Δ back toward its
//! base value when the load falls well below budget.
//!
//! Hysteresis (distinct up/down thresholds and a cool-down between
//! adjustments) prevents the tuner from chattering against the CPs' own
//! adaptation loop — two controllers fighting over the same signal is the
//! classic instability, and the cool-down gives the CP side (which reacts
//! within a few probe cycles) time to settle first.

use presence_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of the device-side [`AutoTuner`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoTuneConfig {
    /// Window over which the probe rate is measured (seconds).
    pub window: SimDuration,
    /// Double Δ when the measured rate exceeds `overload_factor · L_nom`.
    pub overload_factor: f64,
    /// Halve Δ (not below the base Δ) when the measured rate falls below
    /// `underload_factor · L_nom`.
    pub underload_factor: f64,
    /// Minimum time between two adjustments.
    pub cooldown: SimDuration,
    /// Upper bound on the Δ multiplier (2^k steps), limiting how far the
    /// device may throttle its probers.
    pub max_doublings: u32,
}

impl Default for AutoTuneConfig {
    fn default() -> Self {
        Self {
            window: SimDuration::from_secs(10),
            overload_factor: 1.5,
            underload_factor: 0.5,
            cooldown: SimDuration::from_secs(30),
            max_doublings: 6,
        }
    }
}

impl AutoTuneConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), crate::error::ConfigError> {
        use crate::error::ConfigError;
        if self.window == SimDuration::ZERO {
            return Err(ConfigError::new("window must be positive"));
        }
        if self.overload_factor <= 1.0 || self.overload_factor.is_nan() {
            return Err(ConfigError::new("overload_factor must exceed 1"));
        }
        if !(self.underload_factor > 0.0 && self.underload_factor < 1.0) {
            return Err(ConfigError::new("underload_factor must be in (0, 1)"));
        }
        if self.overload_factor <= self.underload_factor {
            return Err(ConfigError::new(
                "overload_factor must exceed underload_factor",
            ));
        }
        if self.max_doublings == 0 {
            return Err(ConfigError::new("max_doublings must be positive"));
        }
        Ok(())
    }
}

/// The tuner's decision for one observation instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuneDecision {
    /// Δ was doubled (load too high).
    Doubled,
    /// Δ was halved (load comfortably low, multiplier above 1).
    Halved,
    /// No change.
    Hold,
}

/// Device-side load controller. Feed it every probe arrival; it tells the
/// device when to retune Δ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoTuner {
    cfg: AutoTuneConfig,
    l_nom: f64,
    arrivals: VecDeque<SimTime>,
    /// Current multiplier as a power of two (0 ⇒ base Δ).
    doublings: u32,
    last_adjust: Option<SimTime>,
    adjustments: u64,
}

impl AutoTuner {
    /// Creates a tuner for a device with nominal load `l_nom`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or non-positive `l_nom`;
    /// validate with [`AutoTuneConfig::validate`] for a recoverable error.
    #[must_use]
    pub fn new(cfg: AutoTuneConfig, l_nom: f64) -> Self {
        cfg.validate().expect("invalid auto-tune configuration");
        assert!(l_nom > 0.0 && l_nom.is_finite(), "l_nom must be positive");
        Self {
            cfg,
            l_nom,
            arrivals: VecDeque::new(),
            doublings: 0,
            last_adjust: None,
            adjustments: 0,
        }
    }

    /// The current Δ multiplier (`2^doublings`).
    #[must_use]
    pub fn multiplier(&self) -> u64 {
        1u64 << self.doublings
    }

    /// Total adjustments made.
    #[must_use]
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Measured probe rate over the trailing window ending at `now`.
    #[must_use]
    pub fn measured_rate(&self, now: SimTime) -> f64 {
        let cutoff = now.saturating_since(SimTime::ZERO); // avoid underflow at start
        let _ = cutoff;
        let horizon = self.cfg.window.as_secs_f64();
        let from = now.as_secs_f64() - horizon;
        let n = self
            .arrivals
            .iter()
            .filter(|t| t.as_secs_f64() > from)
            .count();
        n as f64 / horizon
    }

    fn evict(&mut self, now: SimTime) {
        let from = now.as_secs_f64() - self.cfg.window.as_secs_f64();
        while let Some(front) = self.arrivals.front() {
            if front.as_secs_f64() <= from {
                self.arrivals.pop_front();
            } else {
                break;
            }
        }
    }

    fn in_cooldown(&self, now: SimTime) -> bool {
        match self.last_adjust {
            Some(at) => now.saturating_since(at) < self.cfg.cooldown,
            None => false,
        }
    }

    /// Records a probe arrival and returns the retuning decision. The
    /// caller applies [`TuneDecision::Doubled`]/[`TuneDecision::Halved`] to
    /// its device (e.g. [`crate::SappDevice::double_delta`]).
    pub fn on_probe(&mut self, now: SimTime) -> TuneDecision {
        self.arrivals.push_back(now);
        self.evict(now);
        if self.in_cooldown(now) {
            return TuneDecision::Hold;
        }
        // Require a full window of history before the first decision.
        if now.as_secs_f64() < self.cfg.window.as_secs_f64() {
            return TuneDecision::Hold;
        }
        let rate = self.measured_rate(now);
        if rate > self.cfg.overload_factor * self.l_nom && self.doublings < self.cfg.max_doublings {
            self.doublings += 1;
            self.last_adjust = Some(now);
            self.adjustments += 1;
            TuneDecision::Doubled
        } else if rate < self.cfg.underload_factor * self.l_nom && self.doublings > 0 {
            self.doublings -= 1;
            self.last_adjust = Some(now);
            self.adjustments += 1;
            TuneDecision::Halved
        } else {
            TuneDecision::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn tuner() -> AutoTuner {
        AutoTuner::new(AutoTuneConfig::default(), 10.0)
    }

    /// Feeds probes at `rate` for `secs` starting at `from`; returns the
    /// decisions taken.
    fn feed(tu: &mut AutoTuner, from: f64, secs: f64, rate: f64) -> Vec<TuneDecision> {
        let mut decisions = Vec::new();
        let dt = 1.0 / rate;
        let mut now = from;
        while now < from + secs {
            decisions.push(tu.on_probe(t(now)));
            now += dt;
        }
        decisions
    }

    #[test]
    fn holds_at_nominal_load() {
        let mut tu = tuner();
        let ds = feed(&mut tu, 0.0, 120.0, 10.0);
        assert!(ds.iter().all(|&d| d == TuneDecision::Hold));
        assert_eq!(tu.multiplier(), 1);
    }

    #[test]
    fn doubles_under_overload() {
        let mut tu = tuner();
        let ds = feed(&mut tu, 0.0, 60.0, 40.0); // 4× budget
        assert!(
            ds.contains(&TuneDecision::Doubled),
            "no doubling under 4× overload"
        );
        assert!(tu.multiplier() >= 2);
    }

    #[test]
    fn cooldown_limits_adjustment_rate() {
        let mut tu = tuner();
        feed(&mut tu, 0.0, 120.0, 40.0);
        // 120 s of overload with a 30 s cool-down allows at most 4 steps
        // (plus one for the initial decision boundary).
        assert!(tu.adjustments() <= 5, "{} adjustments", tu.adjustments());
    }

    #[test]
    fn halves_back_when_load_drops() {
        let mut tu = tuner();
        feed(&mut tu, 0.0, 60.0, 40.0);
        let up = tu.multiplier();
        assert!(up > 1);
        // Quiet period: well under half budget.
        feed(&mut tu, 60.0, 300.0, 1.0);
        assert!(
            tu.multiplier() < up,
            "multiplier never came back down from {up}"
        );
    }

    #[test]
    fn never_exceeds_max_doublings() {
        let cfg = AutoTuneConfig {
            cooldown: SimDuration::from_secs(1),
            max_doublings: 3,
            ..AutoTuneConfig::default()
        };
        let mut tu = AutoTuner::new(cfg, 10.0);
        feed(&mut tu, 0.0, 600.0, 100.0);
        assert_eq!(tu.multiplier(), 8, "capped at 2^3");
    }

    #[test]
    fn never_halves_below_base() {
        let mut tu = tuner();
        let ds = feed(&mut tu, 0.0, 300.0, 0.5); // deep underload, base Δ
        assert!(ds.iter().all(|&d| d != TuneDecision::Halved));
        assert_eq!(tu.multiplier(), 1);
    }

    #[test]
    fn no_decision_before_first_window() {
        let mut tu = tuner();
        let ds = feed(&mut tu, 0.0, 9.0, 100.0); // heavy, but window is 10 s
        assert!(ds.iter().all(|&d| d == TuneDecision::Hold));
    }

    #[test]
    fn config_validation() {
        let c = AutoTuneConfig {
            overload_factor: 1.0,
            ..AutoTuneConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AutoTuneConfig {
            underload_factor: 1.5,
            ..AutoTuneConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AutoTuneConfig {
            window: SimDuration::ZERO,
            ..AutoTuneConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AutoTuneConfig {
            max_doublings: 0,
            ..AutoTuneConfig::default()
        };
        assert!(c.validate().is_err());
        assert!(AutoTuneConfig::default().validate().is_ok());
    }

    #[test]
    fn measured_rate_tracks_input() {
        let mut tu = tuner();
        feed(&mut tu, 0.0, 20.0, 25.0);
        let r = tu.measured_rate(t(20.0));
        assert!((r - 25.0).abs() < 3.0, "measured {r}");
    }
}
