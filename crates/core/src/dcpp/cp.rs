//! DCPP control-point behaviour (§4, "CP behavior").
//!
//! "The CP behavior is, compared to the SAPP, much simpler": the same
//! bounded-retransmission probe cycle, but the inter-cycle delay is simply
//! the wait time the device put in its reply. No estimation, no adaptation
//! — which is exactly why the protocol is fair and cheap enough for "small
//! computing devices such as mobile phones, PDAs, and so on".

use crate::config::DcppConfig;
use crate::cycle::{ReplyDisposition, Retransmitter, TimerDisposition};
use crate::prober::Prober;
use crate::types::{AbsenceReason, CpAction, CpId, CpStats, Reply, ReplyBody, TimerToken, Verdict};
use presence_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Phase {
    NotStarted,
    Probing,
    Sleeping,
    Stopped,
}

/// The control-point side of the device-controlled probe protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcppCp {
    cfg: DcppConfig,
    retx: Retransmitter,
    phase: Phase,
    /// The wait the device assigned in the most recent reply.
    last_wait: Option<SimDuration>,
    /// Outstanding wake timer, if sleeping.
    wake: Option<TimerToken>,
    /// The terminal verdict, once reached.
    verdict: Option<Verdict>,
}

impl DcppCp {
    /// Creates a CP that will probe one device.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; validate at the boundary with
    /// [`DcppConfig::validate`] for a recoverable error.
    #[must_use]
    pub fn new(cp: CpId, cfg: DcppConfig) -> Self {
        cfg.validate().expect("invalid DCPP configuration");
        Self {
            retx: Retransmitter::new(cp, cfg.cycle),
            cfg,
            phase: Phase::NotStarted,
            last_wait: None,
            wake: None,
            verdict: None,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &DcppConfig {
        &self.cfg
    }

    /// The wait assigned by the device in the most recent reply.
    #[must_use]
    pub fn last_assigned_wait(&self) -> Option<SimDuration> {
        self.last_wait
    }

    fn declare_absent(&mut self, now: SimTime, reason: AbsenceReason, out: &mut Vec<CpAction>) {
        self.phase = Phase::Stopped;
        self.verdict = Some(Verdict { at: now, reason });
        if let Some(token) = self.wake.take() {
            out.push(CpAction::CancelTimer { token });
        }
        self.retx.abort(out);
        out.push(CpAction::DeviceAbsent { at: now, reason });
    }
}

impl Prober for DcppCp {
    fn cp(&self) -> CpId {
        self.retx.cp()
    }

    fn start(&mut self, now: SimTime, out: &mut Vec<CpAction>) {
        assert!(
            self.phase == Phase::NotStarted,
            "start called twice on DcppCp"
        );
        self.phase = Phase::Probing;
        self.retx.begin_cycle(now, out);
    }

    fn on_reply(&mut self, now: SimTime, reply: &Reply, out: &mut Vec<CpAction>) {
        if self.phase == Phase::Stopped || reply.probe.cp != self.retx.cp() {
            return;
        }
        let ReplyBody::Dcpp { wait } = reply.body else {
            debug_assert!(false, "DCPP CP received a non-DCPP reply");
            return;
        };
        match self.retx.on_reply(now, reply.probe.seq, now, out) {
            ReplyDisposition::Accepted { .. } => {
                self.last_wait = Some(wait);
                let token = self.retx.mint_token();
                self.wake = Some(token);
                self.phase = Phase::Sleeping;
                out.push(CpAction::StartTimer { token, after: wait });
            }
            ReplyDisposition::Stale => {}
        }
    }

    fn on_timer(&mut self, now: SimTime, token: TimerToken, out: &mut Vec<CpAction>) {
        if self.phase == Phase::Stopped {
            return;
        }
        if self.wake == Some(token) {
            self.wake = None;
            self.phase = Phase::Probing;
            self.retx.begin_cycle(now, out);
            return;
        }
        match self.retx.on_timer(now, token, out) {
            TimerDisposition::CycleFailed => {
                self.declare_absent(now, AbsenceReason::ProbeTimeout, out);
            }
            TimerDisposition::Retransmitted | TimerDisposition::NotMine => {}
        }
    }

    fn on_bye(&mut self, now: SimTime, out: &mut Vec<CpAction>) {
        if self.phase == Phase::Stopped {
            return;
        }
        self.declare_absent(now, AbsenceReason::ByeReceived, out);
    }

    fn on_leave_notice(&mut self, now: SimTime, out: &mut Vec<CpAction>) {
        if self.phase == Phase::Stopped {
            return;
        }
        self.declare_absent(now, AbsenceReason::NoticeReceived, out);
    }

    fn stats(&self) -> &CpStats {
        self.retx.stats()
    }

    fn is_stopped(&self) -> bool {
        self.phase == Phase::Stopped
    }

    fn verdict(&self) -> Option<Verdict> {
        self.verdict
    }

    fn current_delay(&self) -> Option<SimDuration> {
        self.last_wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DeviceId, Probe};

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn cp() -> DcppCp {
        DcppCp::new(CpId(2), DcppConfig::paper_default())
    }

    fn dcpp_reply(probe: Probe, wait_ms: u64) -> Reply {
        Reply {
            probe,
            device: DeviceId(0),
            body: ReplyBody::Dcpp {
                wait: SimDuration::from_millis(wait_ms),
            },
        }
    }

    fn sent_probe(out: &[CpAction]) -> Probe {
        out.iter()
            .find_map(|a| match a {
                CpAction::SendProbe(p) => Some(*p),
                _ => None,
            })
            .expect("no probe in actions")
    }

    #[test]
    fn obeys_device_assigned_wait() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let probe = sent_probe(&out);
        out.clear();
        c.on_reply(t(0.001), &dcpp_reply(probe, 500), &mut out);
        // Must sleep exactly the assigned 500 ms.
        let timer = out
            .iter()
            .find_map(|a| match a {
                CpAction::StartTimer { after, .. } => Some(*after),
                _ => None,
            })
            .unwrap();
        assert_eq!(timer, SimDuration::from_millis(500));
        assert_eq!(c.last_assigned_wait(), Some(SimDuration::from_millis(500)));
        assert_eq!(c.current_delay(), Some(SimDuration::from_millis(500)));
    }

    #[test]
    fn wake_starts_next_cycle() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let p1 = sent_probe(&out);
        out.clear();
        c.on_reply(t(0.001), &dcpp_reply(p1, 500), &mut out);
        let wake = out
            .iter()
            .find_map(|a| match a {
                CpAction::StartTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        out.clear();
        c.on_timer(t(0.501), wake, &mut out);
        let p2 = sent_probe(&out);
        assert_eq!(p2.seq, p1.seq + 1);
        assert_eq!(c.stats().cycles_started, 2);
    }

    #[test]
    fn no_delay_known_before_first_reply() {
        let mut c = cp();
        assert_eq!(c.current_delay(), None);
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        assert_eq!(c.current_delay(), None);
    }

    #[test]
    fn retransmits_then_succeeds() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let probe = sent_probe(&out);
        let timeout = out
            .iter()
            .find_map(|a| match a {
                CpAction::StartTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        out.clear();
        c.on_timer(t(0.022), timeout, &mut out);
        assert_eq!(sent_probe(&out).seq, probe.seq, "retransmission");
        out.clear();
        c.on_reply(t(0.03), &dcpp_reply(probe, 500), &mut out);
        assert_eq!(c.stats().cycles_succeeded, 1);
        assert_eq!(c.stats().retransmissions, 1);
        assert!(!c.is_stopped());
    }

    #[test]
    fn four_timeouts_declare_absent() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let mut now = 0.022;
        for _ in 0..4 {
            let timer = out
                .iter()
                .find_map(|a| match a {
                    CpAction::StartTimer { token, .. } => Some(*token),
                    _ => None,
                })
                .unwrap();
            out.clear();
            c.on_timer(t(now), timer, &mut out);
            now += 0.021;
        }
        assert!(c.is_stopped());
        assert!(out.iter().any(|a| matches!(
            a,
            CpAction::DeviceAbsent {
                reason: AbsenceReason::ProbeTimeout,
                ..
            }
        )));
    }

    #[test]
    fn bye_cancels_pending_wake() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let probe = sent_probe(&out);
        out.clear();
        c.on_reply(t(0.001), &dcpp_reply(probe, 500), &mut out);
        out.clear();
        c.on_bye(t(0.2), &mut out);
        assert!(c.is_stopped());
        assert!(
            out.iter()
                .any(|a| matches!(a, CpAction::CancelTimer { .. })),
            "pending wake timer must be cancelled"
        );
    }

    #[test]
    fn stale_reply_does_not_double_schedule() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        let probe = sent_probe(&out);
        out.clear();
        c.on_reply(t(0.001), &dcpp_reply(probe, 500), &mut out);
        out.clear();
        // Duplicate reply (e.g. the device answered a retransmission too).
        c.on_reply(t(0.002), &dcpp_reply(probe, 700), &mut out);
        assert!(out.is_empty(), "stale reply must be inert");
        assert_eq!(c.last_assigned_wait(), Some(SimDuration::from_millis(500)));
        assert_eq!(c.stats().stale_replies, 1);
    }

    #[test]
    fn foreign_reply_ignored() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        out.clear();
        let foreign = Reply {
            probe: Probe {
                cp: CpId(55),
                seq: 0,
            },
            device: DeviceId(0),
            body: ReplyBody::Dcpp {
                wait: SimDuration::from_millis(100),
            },
        };
        c.on_reply(t(0.001), &foreign, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "start called twice")]
    fn double_start_panics() {
        let mut c = cp();
        let mut out = Vec::new();
        c.start(t(0.0), &mut out);
        c.start(t(1.0), &mut out);
    }
}
