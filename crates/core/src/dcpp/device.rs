//! DCPP device behaviour (§4, "Device behavior").
//!
//! The device owns the probe schedule. It remembers the time instant `nt`
//! for which the last probing CP has been scheduled; a probe arriving at
//! time `t` is scheduled for
//!
//! ```text
//! nt' = max{nt, t} + Δ(nt, t),   Δ(nt, t) = max{δ_min, d_min − (nt − t)}
//! ```
//!
//! and the reply tells the CP to wait `nt' − t`. The two constraints this
//! encodes: (i) consecutive scheduled probes are at least `δ_min` apart, so
//! the device load never exceeds `L_nom = 1/δ_min`; (ii) the waiting time
//! is at least `d_min`, so no CP is asked to probe more often than
//! `f_max = 1/d_min`.
//!
//! **Idle-device subtlety.** Read literally, `Δ(nt, t)` with `nt` far in the
//! past (an idle device) yields `d_min + (t − nt)` — an arbitrarily long
//! wait after a quiet period, which contradicts the protocol's intent and
//! its stated constraints. We therefore clamp the backlog term at zero:
//! `Δ(nt, t) = max{δ_min, d_min − max(nt − t, 0)}`, equivalently
//! `nt' = max{ max(nt, t) + δ_min, t + d_min }`. For every state the paper's
//! analysis exercises (`nt ≥ t − d_min`) this coincides with the literal
//! formula; see `DESIGN.md` for the derivation.

use crate::config::DcppConfig;
use crate::types::{DeviceId, Probe, Reply, ReplyBody};
use presence_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The device side of the device-controlled probe protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcppDevice {
    id: DeviceId,
    cfg: DcppConfig,
    /// The time instant for which the last probing CP was scheduled.
    nt: SimTime,
    /// Total probes answered.
    probes_received: u64,
}

impl DcppDevice {
    /// Creates a device with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; validate at the boundary with
    /// [`DcppConfig::validate`] for a recoverable error.
    #[must_use]
    pub fn new(id: DeviceId, cfg: DcppConfig) -> Self {
        cfg.validate().expect("invalid DCPP configuration");
        Self {
            id,
            cfg,
            nt: SimTime::ZERO,
            probes_received: 0,
        }
    }

    /// The device's identity.
    #[must_use]
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &DcppConfig {
        &self.cfg
    }

    /// The next-probe-time register `nt`.
    #[must_use]
    pub fn next_slot(&self) -> SimTime {
        self.nt
    }

    /// Total probes answered.
    #[must_use]
    pub fn probes_received(&self) -> u64 {
        self.probes_received
    }

    /// The scheduling backlog at time `now`: how far `nt` lies in the
    /// future. Zero when the device is idle. Roughly `k · δ_min` when `k`
    /// CPs are enqueued — a direct observable for the Figure 5 join spikes.
    #[must_use]
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.nt.saturating_since(now)
    }

    /// Handles a probe arriving at `now`: advances the schedule and replies
    /// with the wait time.
    pub fn on_probe(&mut self, now: SimTime, probe: Probe) -> Reply {
        self.probes_received += 1;
        // nt' = max(max(nt, now) + δ_min, now + d_min)  — see module docs.
        let serialised = self.nt.max(now) + self.cfg.delta_min;
        let per_cp_floor = now + self.cfg.d_min;
        let nt_new = serialised.max(per_cp_floor);
        let wait = nt_new - now;
        self.nt = nt_new;
        Reply {
            probe,
            device: self.id,
            body: ReplyBody::Dcpp { wait },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CpId;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn device() -> DcppDevice {
        DcppDevice::new(DeviceId(0), DcppConfig::paper_default())
    }

    fn probe(cp: u32, seq: u64) -> Probe {
        Probe { cp: CpId(cp), seq }
    }

    fn wait_of(reply: &Reply) -> SimDuration {
        match reply.body {
            ReplyBody::Dcpp { wait } => wait,
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn single_cp_waits_d_min() {
        // A lone CP is told to wait exactly d_min = 0.5 s each time: the
        // per-CP frequency cap binds, not the device budget.
        let mut d = device();
        let r = d.on_probe(t(10.0), probe(1, 0));
        assert_eq!(wait_of(&r), SimDuration::from_millis(500));
        // It obeys, probing again at 10.5.
        let r = d.on_probe(t(10.5), probe(1, 1));
        assert_eq!(wait_of(&r), SimDuration::from_millis(500));
    }

    #[test]
    fn idle_device_does_not_penalise_newcomer() {
        // nt = 0, first probe at t = 1000: the literal paper formula would
        // produce a wait of d_min + 1000 s; the clamped rule yields d_min.
        let mut d = device();
        let r = d.on_probe(t(1000.0), probe(1, 0));
        assert_eq!(wait_of(&r), SimDuration::from_millis(500));
    }

    #[test]
    fn burst_of_cps_serialised_at_delta_min() {
        // Five CPs all probe at t = 0. The first is floored at d_min; the
        // rest land δ_min apart once the backlog exceeds d_min.
        let mut d = device();
        let waits: Vec<f64> = (0..5)
            .map(|i| wait_of(&d.on_probe(t(0.0), probe(i, 0))).as_secs_f64())
            .collect();
        assert!((waits[0] - 0.5).abs() < 1e-9, "first: d_min floor");
        assert!((waits[1] - 0.6).abs() < 1e-9, "second: 0.5 + δ_min");
        assert!((waits[2] - 0.7).abs() < 1e-9);
        assert!((waits[3] - 0.8).abs() < 1e-9);
        assert!((waits[4] - 0.9).abs() < 1e-9);
        // Slots are exactly δ_min apart → device load is at most L_nom.
        for w in waits.windows(2) {
            assert!((w[1] - w[0] - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn steady_state_load_is_l_nom() {
        // 20 CPs in lock-step: after the initial transient every reply
        // schedules δ_min after the previous, so the aggregate probe rate
        // equals L_nom = 10/s and every CP gets the same inter-probe gap.
        let mut d = device();
        let k = 20u32;
        // Each CP probes exactly when scheduled.
        let mut next_time: Vec<SimTime> = (0..k).map(|_| SimTime::ZERO).collect();
        let mut seq = vec![0u64; k as usize];
        let mut last_gap = vec![None::<SimDuration>; k as usize];
        // Run 40 "rounds" of everyone probing at their scheduled instant.
        for _round in 0..40 {
            // Process in time order (stable by CP id).
            let mut order: Vec<usize> = (0..k as usize).collect();
            order.sort_by_key(|&i| next_time[i]);
            for i in order {
                let now = next_time[i];
                let r = d.on_probe(now, probe(i as u32, seq[i]));
                seq[i] += 1;
                let w = wait_of(&r);
                last_gap[i] = Some(w);
                next_time[i] = now + w;
            }
        }
        // In steady state every CP's wait converges to k·δ_min = 2 s.
        for (i, gap) in last_gap.iter().enumerate() {
            let g = gap.unwrap().as_secs_f64();
            assert!(
                (g - 2.0).abs() < 0.11,
                "cp{i} steady gap {g} (expected ~2.0)"
            );
        }
    }

    #[test]
    fn backlog_reflects_queue_depth() {
        let mut d = device();
        assert_eq!(d.backlog(t(0.0)), SimDuration::ZERO);
        for i in 0..10 {
            d.on_probe(t(0.0), probe(i, 0));
        }
        // First slot at 0.5, then 9 more δ_min slots → backlog 1.4 s.
        let b = d.backlog(t(0.0)).as_secs_f64();
        assert!((b - 1.4).abs() < 1e-9, "backlog {b}");
        assert_eq!(d.probes_received(), 10);
    }

    #[test]
    fn late_cp_is_appended_to_schedule() {
        let mut d = device();
        d.on_probe(t(0.0), probe(1, 0)); // nt = 0.5
        d.on_probe(t(0.0), probe(2, 0)); // nt = 0.6
                                         // A third CP arrives later but before the backlog clears.
        let r = d.on_probe(t(0.55), probe(3, 0));
        // max(nt, t) + δ_min = 0.6 + 0.1 = 0.7; floor t + d_min = 1.05 wins.
        assert!((wait_of(&r).as_secs_f64() - 0.5).abs() < 1e-9);
        assert_eq!(d.next_slot(), t(1.05));
    }

    #[test]
    fn reply_echoes_probe() {
        let mut d = device();
        let p = probe(3, 9);
        let r = d.on_probe(t(1.0), p);
        assert_eq!(r.probe, p);
        assert_eq!(r.device, DeviceId(0));
    }

    #[test]
    fn custom_config_rates() {
        let cfg = DcppConfig {
            delta_min: SimDuration::from_millis(50), // L_nom = 20
            d_min: SimDuration::from_millis(200),    // f_max = 5
            ..DcppConfig::paper_default()
        };
        let mut d = DcppDevice::new(DeviceId(1), cfg);
        let r = d.on_probe(t(0.0), probe(0, 0));
        assert_eq!(wait_of(&r), SimDuration::from_millis(200));
        let r = d.on_probe(t(0.0), probe(1, 0));
        // Second slot: max(0.2, 0+0.05)… nt = 0.2, so 0.2+0.05 = 0.25 vs
        // floor 0.2 → 0.25.
        assert_eq!(wait_of(&r), SimDuration::from_millis(250));
    }
}
