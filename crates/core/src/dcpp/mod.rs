//! The device-controlled probe protocol (DCPP), §4 of the paper.

mod cp;
mod device;

pub use cp::DcppCp;
pub use device::DcppDevice;
