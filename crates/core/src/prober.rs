//! The common interface of all CP-side (probing) state machines.
//!
//! Drivers — the discrete-event simulator in `presence-sim` and the
//! wall-clock hosts in `presence-runtime` — program against this trait, so
//! SAPP, DCPP, and the baseline probers are interchangeable in every
//! scenario and experiment.

use crate::types::{CpAction, CpId, CpStats, Reply, TimerToken, Verdict};
use presence_des::{SimDuration, SimTime};

/// A sans-io probing state machine (the CP side of a probe protocol).
///
/// Lifecycle: `start` once, then feed `on_reply` / `on_timer` / `on_bye` /
/// `on_leave_notice` as the environment observes them. Every call may emit
/// [`CpAction`]s that the driver must execute (send a probe, arm or cancel
/// a timer, surface an absence verdict).
pub trait Prober {
    /// The identity of this control point.
    fn cp(&self) -> CpId;

    /// Begins probing. Must be called exactly once.
    fn start(&mut self, now: SimTime, out: &mut Vec<CpAction>);

    /// Delivers a reply received from the device.
    fn on_reply(&mut self, now: SimTime, reply: &Reply, out: &mut Vec<CpAction>);

    /// Delivers a timer firing previously requested via
    /// [`CpAction::StartTimer`]. Stale timers (already cancelled or
    /// superseded) must be tolerated.
    fn on_timer(&mut self, now: SimTime, token: TimerToken, out: &mut Vec<CpAction>);

    /// The device announced a graceful leave.
    fn on_bye(&mut self, now: SimTime, out: &mut Vec<CpAction>);

    /// Another CP disseminated a leave notice for the device.
    fn on_leave_notice(&mut self, now: SimTime, out: &mut Vec<CpAction>);

    /// Probe-cycle statistics.
    fn stats(&self) -> &CpStats;

    /// Whether the machine has reached a terminal state (device declared
    /// absent).
    fn is_stopped(&self) -> bool;

    /// The terminal absence verdict, once reached. `Some` exactly when
    /// [`Prober::is_stopped`] holds; mirrors the
    /// [`CpAction::DeviceAbsent`] the machine emitted, so drivers can read
    /// the outcome without scraping the action stream.
    fn verdict(&self) -> Option<Verdict>;

    /// The current inter-probe-cycle delay, when the machine knows one
    /// (SAPP: the adapted `δ`; DCPP: the last device-assigned wait;
    /// fixed-rate: the period). `None` before the first assignment for
    /// device-controlled protocols.
    fn current_delay(&self) -> Option<SimDuration>;
}
