//! The CP overlay and leave-notice dissemination.
//!
//! SAPP organises CPs "dynamically […] in an overlay network by letting the
//! device, on each probe, return the ids of the last two (distinct)
//! processes that probed it. On detecting the absence of a device, the CP
//! uses this overlay network to inform all CPs about the leave of the
//! device rapidly." The paper explicitly does **not** analyse that
//! dissemination phase; we implement it anyway as the natural completion of
//! the protocol: a gossip flood with duplicate suppression over the learned
//! neighbour links.

use crate::types::{CpId, DeviceId, LeaveNotice};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A CP's view of the overlay: the peers it has learned from device
/// replies, most recent last.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlayView {
    me: CpId,
    neighbors: BTreeSet<CpId>,
    capacity: usize,
}

impl OverlayView {
    /// Default neighbour capacity: enough for rapid dissemination without
    /// turning gossip into broadcast.
    pub const DEFAULT_CAPACITY: usize = 8;

    /// Creates an empty view for CP `me`.
    #[must_use]
    pub fn new(me: CpId) -> Self {
        Self::with_capacity(me, Self::DEFAULT_CAPACITY)
    }

    /// Creates an empty view retaining at most `capacity` neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(me: CpId, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            me,
            neighbors: BTreeSet::new(),
            capacity,
        }
    }

    /// The owning CP.
    #[must_use]
    pub fn me(&self) -> CpId {
        self.me
    }

    /// Absorbs the `last_probers` field of a reply. The own id is never
    /// stored. When over capacity, the smallest-id neighbour is evicted
    /// (deterministic, and id-diverse enough for gossip in practice).
    pub fn observe(&mut self, last_probers: [Option<CpId>; 2]) {
        for peer in last_probers.into_iter().flatten() {
            if peer == self.me {
                continue;
            }
            self.neighbors.insert(peer);
            while self.neighbors.len() > self.capacity {
                let evict = *self.neighbors.iter().next().expect("non-empty");
                self.neighbors.remove(&evict);
            }
        }
    }

    /// The current neighbour set.
    #[must_use]
    pub fn neighbors(&self) -> &BTreeSet<CpId> {
        &self.neighbors
    }

    /// Number of known neighbours.
    #[must_use]
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether no neighbour is known yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }
}

/// Outcome of receiving a leave notice.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NoticeDisposition {
    /// First time we hear of this departure: deliver it to the application
    /// and forward to the listed peers.
    Fresh {
        /// Peers to forward the (re-stamped) notice to.
        forward_to: Vec<CpId>,
    },
    /// Already known; suppress.
    Duplicate,
}

/// Gossip dissemination of device departures with duplicate suppression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Disseminator {
    me: CpId,
    seen: BTreeSet<DeviceId>,
    /// Notices originated or forwarded by this CP.
    forwarded: u64,
    /// Duplicates suppressed.
    suppressed: u64,
}

impl Disseminator {
    /// Creates a disseminator for CP `me`.
    #[must_use]
    pub fn new(me: CpId) -> Self {
        Self {
            me,
            seen: BTreeSet::new(),
            forwarded: 0,
            suppressed: 0,
        }
    }

    /// Called when this CP *itself* detects the departure of `device`.
    /// Returns the notices to send to every overlay neighbour. Idempotent:
    /// a second local detection of the same device emits nothing.
    pub fn on_local_detection(
        &mut self,
        device: DeviceId,
        view: &OverlayView,
    ) -> Vec<(CpId, LeaveNotice)> {
        if !self.seen.insert(device) {
            return Vec::new();
        }
        let notice = LeaveNotice {
            device,
            reporter: self.me,
        };
        let out: Vec<_> = view
            .neighbors()
            .iter()
            .map(|&peer| (peer, notice))
            .collect();
        self.forwarded += out.len() as u64;
        out
    }

    /// Called when a leave notice arrives from a peer.
    pub fn on_notice(&mut self, notice: LeaveNotice, view: &OverlayView) -> NoticeDisposition {
        if !self.seen.insert(notice.device) {
            self.suppressed += 1;
            return NoticeDisposition::Duplicate;
        }
        let forward_to: Vec<CpId> = view
            .neighbors()
            .iter()
            .copied()
            .filter(|&p| p != notice.reporter)
            .collect();
        self.forwarded += forward_to.len() as u64;
        NoticeDisposition::Fresh { forward_to }
    }

    /// Whether this CP already knows `device` has left.
    #[must_use]
    pub fn knows(&self, device: DeviceId) -> bool {
        self.seen.contains(&device)
    }

    /// Notices sent (originated + relayed).
    #[must_use]
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Duplicate notices suppressed.
    #[must_use]
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_filters_self_and_none() {
        let mut v = OverlayView::new(CpId(1));
        v.observe([Some(CpId(1)), None]);
        assert!(v.is_empty());
        v.observe([Some(CpId(2)), Some(CpId(3))]);
        assert_eq!(v.len(), 2);
        assert!(v.neighbors().contains(&CpId(2)));
        assert!(v.neighbors().contains(&CpId(3)));
    }

    #[test]
    fn observe_dedupes() {
        let mut v = OverlayView::new(CpId(1));
        v.observe([Some(CpId(2)), None]);
        v.observe([Some(CpId(2)), None]);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn capacity_evicts() {
        let mut v = OverlayView::with_capacity(CpId(0), 2);
        v.observe([Some(CpId(1)), Some(CpId(2))]);
        v.observe([Some(CpId(3)), None]);
        assert_eq!(v.len(), 2);
        // Smallest id evicted.
        assert!(!v.neighbors().contains(&CpId(1)));
        assert!(v.neighbors().contains(&CpId(2)));
        assert!(v.neighbors().contains(&CpId(3)));
    }

    #[test]
    fn local_detection_notifies_all_neighbors() {
        let mut v = OverlayView::new(CpId(0));
        v.observe([Some(CpId(1)), Some(CpId(2))]);
        let mut d = Disseminator::new(CpId(0));
        let out = d.on_local_detection(DeviceId(9), &v);
        assert_eq!(out.len(), 2);
        for (_, notice) in &out {
            assert_eq!(notice.device, DeviceId(9));
            assert_eq!(notice.reporter, CpId(0));
        }
        assert!(d.knows(DeviceId(9)));
        // Second detection emits nothing.
        assert!(d.on_local_detection(DeviceId(9), &v).is_empty());
    }

    #[test]
    fn notice_forwarded_once_and_not_back_to_reporter() {
        let mut v = OverlayView::new(CpId(1));
        v.observe([Some(CpId(0)), Some(CpId(2))]);
        let mut d = Disseminator::new(CpId(1));
        let notice = LeaveNotice {
            device: DeviceId(9),
            reporter: CpId(0),
        };
        match d.on_notice(notice, &v) {
            NoticeDisposition::Fresh { forward_to } => {
                assert_eq!(forward_to, vec![CpId(2)], "must skip the reporter");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(d.on_notice(notice, &v), NoticeDisposition::Duplicate);
        assert_eq!(d.suppressed(), 1);
    }

    #[test]
    fn flood_terminates_and_reaches_everyone() {
        // Build a ring overlay of 10 CPs, each knowing its two ring
        // neighbours, and flood a departure from CP 0. Every CP must learn
        // of it, and the flood must terminate (finite message count).
        let n = 10u32;
        let mut views: Vec<OverlayView> = (0..n).map(|i| OverlayView::new(CpId(i))).collect();
        for i in 0..n {
            let left = CpId((i + n - 1) % n);
            let right = CpId((i + 1) % n);
            views[i as usize].observe([Some(left), Some(right)]);
        }
        let mut dss: Vec<Disseminator> = (0..n).map(|i| Disseminator::new(CpId(i))).collect();

        let mut queue: Vec<(CpId, LeaveNotice)> = dss[0].on_local_detection(DeviceId(5), &views[0]);
        let mut messages = queue.len();
        while let Some((to, notice)) = queue.pop() {
            let idx = to.0 as usize;
            if let NoticeDisposition::Fresh { forward_to } = dss[idx].on_notice(notice, &views[idx])
            {
                let restamped = LeaveNotice {
                    device: notice.device,
                    reporter: to,
                };
                for peer in forward_to {
                    queue.push((peer, restamped));
                    messages += 1;
                }
            }
        }
        assert!(
            dss.iter().all(|d| d.knows(DeviceId(5))),
            "flood must cover the ring"
        );
        assert!(
            messages <= (2 * n) as usize + 2,
            "flood of {messages} messages too chatty"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = OverlayView::with_capacity(CpId(0), 0);
    }
}
