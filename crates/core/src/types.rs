//! Shared protocol vocabulary: node identities, wire messages, and the
//! actions protocol state machines emit.
//!
//! Both probe protocols share the same message skeleton (Fig. 1 of the
//! paper): control points send [`Probe`]s, devices answer with a [`Reply`]
//! whose payload differs per protocol (a probe counter for SAPP, a wait
//! time for DCPP), and devices leaving gracefully broadcast a [`Bye`].

use presence_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a control point (CP) — the probing role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CpId(pub u32);

impl fmt::Display for CpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cp{:02}", self.0)
    }
}

/// Identity of a device — the probed role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{:02}", self.0)
    }
}

/// A probe ("are you still there?") sent by a CP to a device.
///
/// `seq` identifies the probe *cycle*; retransmissions within a cycle reuse
/// it, so a late reply to an earlier transmission of the same cycle still
/// counts (and a reply to a previous cycle is recognisably stale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Probe {
    /// The probing CP.
    pub cp: CpId,
    /// Probe-cycle sequence number, unique per CP.
    pub seq: u64,
}

/// Protocol-specific payload of a reply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReplyBody {
    /// SAPP: the device's probe counter after incrementing by Δ, plus the
    /// ids of the last two distinct probing CPs (the overlay links).
    Sapp {
        /// Probe counter value `pc` after this probe's increment.
        pc: u64,
        /// The last two distinct CPs that probed before this one.
        last_probers: [Option<CpId>; 2],
    },
    /// DCPP: how long this CP must wait before its next probe.
    Dcpp {
        /// The delay `nt' − t` computed by the device.
        wait: SimDuration,
    },
}

/// A device's answer to a [`Probe`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reply {
    /// The probe this reply answers (CP id + cycle sequence).
    pub probe: Probe,
    /// The answering device.
    pub device: DeviceId,
    /// Protocol-specific content.
    pub body: ReplyBody,
}

/// Graceful-leave announcement ("bye-message" in the paper's introduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bye {
    /// The departing device.
    pub device: DeviceId,
}

/// Notification that a device has been detected absent, disseminated over
/// the CP overlay (the information-dissemination phase the paper defers;
/// implemented here as the natural extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaveNotice {
    /// The device detected as gone.
    pub device: DeviceId,
    /// The CP that detected (or relayed) the departure.
    pub reporter: CpId,
}

/// Everything that can travel over the network between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WireMessage {
    /// CP → device.
    Probe(Probe),
    /// Device → CP.
    Reply(Reply),
    /// Device → all (graceful leave).
    Bye(Bye),
    /// CP → CP (overlay dissemination).
    LeaveNotice(LeaveNotice),
}

/// Opaque handle correlating a timer request with its firing.
///
/// State machines mint monotonically increasing tokens; drivers map them to
/// whatever their environment uses (DES event handles, wall-clock timers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TimerToken(pub u64);

/// An instruction from a CP-side state machine to its driver.
///
/// The state machines are *sans-io*: they never talk to a network or a
/// clock, they only return actions. The same machines therefore run under
/// the discrete-event simulator and the wall-clock UDP runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CpAction {
    /// Transmit a probe to the device.
    SendProbe(Probe),
    /// Arm a timer that must fire after `after`, delivering `token`.
    StartTimer {
        /// Token to hand back when the timer fires.
        token: TimerToken,
        /// Delay until firing.
        after: SimDuration,
    },
    /// Disarm a previously started timer (ignore if already fired).
    CancelTimer {
        /// The token the timer was armed with.
        token: TimerToken,
    },
    /// The device has been declared absent (4 unanswered probes, or a Bye).
    DeviceAbsent {
        /// When the verdict was reached.
        at: SimTime,
        /// Why the verdict was reached.
        reason: AbsenceReason,
    },
}

/// Why a CP declared the device absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbsenceReason {
    /// The initial probe and all retransmissions went unanswered.
    ProbeTimeout,
    /// The device announced its departure with a bye-message.
    ByeReceived,
    /// Another CP disseminated a leave notice over the overlay.
    NoticeReceived,
}

/// A terminal absence verdict: when it was reached and why.
///
/// Every [`crate::Prober`] records its verdict internally the moment it
/// emits [`CpAction::DeviceAbsent`], so drivers (the simulator's CP actor,
/// the wall-clock hosts, the sim/runtime conformance harness) can read the
/// outcome directly from the machine instead of scraping the action stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// When the verdict was reached (protocol time).
    pub at: SimTime,
    /// Why the device was declared absent.
    pub reason: AbsenceReason,
}

/// Running statistics every CP-side machine maintains.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CpStats {
    /// Probe transmissions (including retransmissions).
    pub probes_sent: u64,
    /// Probe cycles begun.
    pub cycles_started: u64,
    /// Cycles that ended with an accepted reply.
    pub cycles_succeeded: u64,
    /// Cycles that ended in four unanswered transmissions.
    pub cycles_failed: u64,
    /// Replies discarded as stale (wrong cycle).
    pub stale_replies: u64,
    /// Retransmissions sent.
    pub retransmissions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(CpId(3).to_string(), "cp03");
        assert_eq!(DeviceId(0).to_string(), "dev00");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(CpId(1));
        set.insert(CpId(1));
        set.insert(CpId(2));
        assert_eq!(set.len(), 2);
        assert!(CpId(1) < CpId(2));
    }

    #[test]
    fn wire_message_roundtrips_through_serde() {
        let msg = WireMessage::Reply(Reply {
            probe: Probe {
                cp: CpId(4),
                seq: 17,
            },
            device: DeviceId(0),
            body: ReplyBody::Sapp {
                pc: 1_700_000,
                last_probers: [Some(CpId(2)), None],
            },
        });
        let json = serde_json::to_string(&msg).unwrap();
        let back: WireMessage = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn dcpp_reply_roundtrip() {
        let msg = WireMessage::Reply(Reply {
            probe: Probe {
                cp: CpId(1),
                seq: 2,
            },
            device: DeviceId(7),
            body: ReplyBody::Dcpp {
                wait: SimDuration::from_millis(500),
            },
        });
        let json = serde_json::to_string(&msg).unwrap();
        let back: WireMessage = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
    }
}
