//! Error types for protocol configuration and state-machine misuse.

use std::error::Error;
use std::fmt;

/// A configuration was rejected by validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error with the given description.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable description.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_message() {
        let e = ConfigError::new("beta must exceed 1");
        assert_eq!(e.to_string(), "invalid configuration: beta must exceed 1");
        assert_eq!(e.message(), "beta must exceed 1");
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn Error) {}
        takes_error(&ConfigError::new("x"));
    }
}
