//! Property-based tests for the protocol state machines.
//!
//! These drive the sans-io machines with adversarial event sequences and
//! check the paper's stated invariants:
//!
//! * SAPP's delay always stays inside `[δ_min, δ_max]` (Eq. 1 clamps);
//! * DCPP's device never schedules two probes closer than `δ_min` and never
//!   asks a CP to wait less than `d_min` (§4 constraints (i) and (ii));
//! * the probe cycle never sends more than `1 + max_retransmissions`
//!   transmissions per cycle.

use presence_core::{
    CpAction, CpId, DcppConfig, DcppCp, DcppDevice, DeviceId, Probe, ProbeCycleConfig, Prober,
    Reply, ReplyBody, Retransmitter, SappConfig, SappCp, TimerDisposition,
};
use presence_des::{SimDuration, SimTime};
use proptest::prelude::*;

fn t(secs: f64) -> SimTime {
    SimTime::from_secs_f64(secs)
}

/// Extracts every timer-start token from an action batch.
fn timers(out: &[CpAction]) -> Vec<presence_core::TimerToken> {
    out.iter()
        .filter_map(|a| match a {
            CpAction::StartTimer { token, .. } => Some(*token),
            _ => None,
        })
        .collect()
}

fn probes(out: &[CpAction]) -> Vec<Probe> {
    out.iter()
        .filter_map(|a| match a {
            CpAction::SendProbe(p) => Some(*p),
            _ => None,
        })
        .collect()
}

proptest! {
    /// DCPP device invariants (i) and (ii) hold under arbitrary arrival
    /// patterns: scheduled slots are >= delta_min apart and every assigned
    /// wait is >= d_min.
    #[test]
    fn dcpp_device_constraints(arrival_gaps in prop::collection::vec(0.0..2.0f64, 1..200)) {
        let cfg = DcppConfig::paper_default();
        let mut device = DcppDevice::new(DeviceId(0), cfg);
        let mut now = 0.0;
        let mut prev_slot: Option<SimTime> = None;
        for (i, gap) in arrival_gaps.iter().enumerate() {
            now += gap;
            let reply = device.on_probe(t(now), Probe { cp: CpId(i as u32), seq: 0 });
            let ReplyBody::Dcpp { wait } = reply.body else { panic!("wrong body") };
            // (ii) no CP asked to probe sooner than d_min.
            prop_assert!(wait >= cfg.d_min, "wait {wait} below d_min");
            let slot = t(now) + wait;
            // (i) consecutive scheduled slots at least delta_min apart.
            if let Some(prev) = prev_slot {
                prop_assert!(
                    slot.saturating_since(prev) >= cfg.delta_min
                        || slot == prev, // identical CPs cannot collide; distinct slots must be spaced
                    "slots {prev} and {slot} closer than delta_min"
                );
                prop_assert!(slot > prev, "schedule must be strictly increasing");
            }
            prev_slot = Some(slot);
        }
    }

    /// The DCPP schedule admits at most 1/δ_min probes per second in any
    /// window once the d_min floor is excluded: count slots in a window.
    #[test]
    fn dcpp_load_cap(n_cps in 1usize..80) {
        let cfg = DcppConfig::paper_default();
        let mut device = DcppDevice::new(DeviceId(0), cfg);
        // All CPs probe at t=0 (a worst-case join burst).
        let slots: Vec<f64> = (0..n_cps)
            .map(|i| {
                let r = device.on_probe(t(0.0), Probe { cp: CpId(i as u32), seq: 0 });
                let ReplyBody::Dcpp { wait } = r.body else { panic!() };
                wait.as_secs_f64()
            })
            .collect();
        // In any 1-second window of scheduled slots there are at most
        // L_nom = 10 slots (+1 for the window-edge slot).
        let mut sorted = slots.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, &s) in sorted.iter().enumerate() {
            let in_window = sorted[i..].iter().take_while(|&&x| x < s + 1.0).count();
            prop_assert!(in_window <= 11, "{in_window} slots within 1s of {s}");
        }
    }

    /// SAPP's adapted delay stays inside [δ_min, δ_max] whatever pc values
    /// the device reports.
    #[test]
    fn sapp_delay_stays_clamped(pcs in prop::collection::vec(1u64..10_000_000_000, 2..100)) {
        let cfg = SappConfig::paper_default();
        let mut cp = SappCp::new(CpId(0), cfg);
        let mut out = Vec::new();
        cp.start(t(0.0), &mut out);
        let mut now = 0.0;
        let mut pc_acc = 0u64;
        for pc_jump in pcs {
            let probe = probes(&out).last().copied().expect("probe in flight");
            pc_acc = pc_acc.saturating_add(pc_jump);
            now += 0.001;
            out.clear();
            cp.on_reply(
                t(now),
                &Reply {
                    probe,
                    device: DeviceId(0),
                    body: ReplyBody::Sapp { pc: pc_acc, last_probers: [None, None] },
                },
                &mut out,
            );
            prop_assert!(cp.delay() >= cfg.delta_min, "delay below delta_min");
            prop_assert!(cp.delay() <= cfg.delta_max, "delay above delta_max");
            // Wake up for the next cycle.
            let wake = *timers(&out).last().expect("wake timer");
            now += cp.delay().as_secs_f64();
            out.clear();
            cp.on_timer(t(now), wake, &mut out);
        }
    }

    /// A probe cycle sends at most 1 + max_retransmissions transmissions,
    /// then fails — under any retransmission limit.
    #[test]
    fn cycle_transmission_budget(max_retx in 0u32..10) {
        let cfg = ProbeCycleConfig {
            max_retransmissions: max_retx,
            ..ProbeCycleConfig::paper_default()
        };
        let mut e = Retransmitter::new(CpId(0), cfg);
        let mut out = Vec::new();
        e.begin_cycle(t(0.0), &mut out);
        let mut transmissions = probes(&out).len() as u32;
        let mut now = 0.1;
        loop {
            let tok = *timers(&out).last().expect("timer armed");
            out.clear();
            match e.on_timer(t(now), tok, &mut out) {
                TimerDisposition::Retransmitted => {
                    transmissions += probes(&out).len() as u32;
                    now += 0.1;
                }
                TimerDisposition::CycleFailed => break,
                TimerDisposition::NotMine => prop_assert!(false, "live timer not recognised"),
            }
        }
        prop_assert_eq!(transmissions, 1 + max_retx);
        prop_assert_eq!(e.stats().probes_sent, (1 + max_retx) as u64);
    }

    /// Replies with arbitrary wrong sequence numbers never complete a DCPP
    /// cycle or schedule a wake timer.
    #[test]
    fn dcpp_cp_ignores_wrong_seqs(wrong_seqs in prop::collection::vec(1u64..1000, 1..50)) {
        let mut cp = DcppCp::new(CpId(3), DcppConfig::paper_default());
        let mut out = Vec::new();
        cp.start(t(0.0), &mut out);
        let real = probes(&out)[0];
        for (i, &seq) in wrong_seqs.iter().enumerate() {
            if seq == real.seq {
                continue;
            }
            out.clear();
            cp.on_reply(
                t(0.001 + i as f64 * 1e-6),
                &Reply {
                    probe: Probe { cp: CpId(3), seq },
                    device: DeviceId(0),
                    body: ReplyBody::Dcpp { wait: SimDuration::from_millis(100) },
                },
                &mut out,
            );
            prop_assert!(out.is_empty(), "stale reply produced actions");
        }
        prop_assert_eq!(cp.stats().cycles_succeeded, 0);
        prop_assert!(!cp.is_stopped());
    }

    /// SAPP adaptation is monotone in the right direction: a higher
    /// experienced load never yields a *shorter* next delay than a lower
    /// one, starting from the same state.
    #[test]
    fn sapp_adaptation_monotone(l_low in 1.0..5e6f64, l_high in 1.0..5e6f64) {
        prop_assume!(l_low <= l_high);
        let run = |l_exp: f64| -> f64 {
            let mut cfg = SappConfig::paper_default();
            cfg.initial_delay = SimDuration::from_secs(1);
            let mut cp = SappCp::new(CpId(0), cfg);
            let mut out = Vec::new();
            cp.start(t(0.0), &mut out);
            let p1 = probes(&out)[0];
            out.clear();
            // First reply sets the anchor at pc=0-ish.
            cp.on_reply(t(1.0), &Reply {
                probe: p1,
                device: DeviceId(0),
                body: ReplyBody::Sapp { pc: 1, last_probers: [None, None] },
            }, &mut out);
            let wake = *timers(&out).last().unwrap();
            out.clear();
            cp.on_timer(t(2.0), wake, &mut out);
            let p2 = probes(&out)[0];
            out.clear();
            // Second reply exactly 1 s after the first: Δpc = l_exp.
            cp.on_reply(t(2.0), &Reply {
                probe: p2,
                device: DeviceId(0),
                body: ReplyBody::Sapp { pc: 1 + l_exp as u64, last_probers: [None, None] },
            }, &mut out);
            cp.delay().as_secs_f64()
        };
        prop_assert!(run(l_high) >= run(l_low) - 1e-12);
    }
}
