//! Conformance tests: the protocol constants and formulas of the paper,
//! checked symbol by symbol against the state machines.
//!
//! These are deliberately pedantic — each test pins one sentence or
//! equation from §2/§4 so that any future refactor that drifts from the
//! paper's specification fails with a pointer to the text.

use presence_core::{
    CpAction, CpId, DcppConfig, DcppDevice, DeviceId, Probe, ProbeCycleConfig, Prober, Reply,
    ReplyBody, SappConfig, SappCp, SappDevice, SappDeviceConfig,
};
use presence_des::{SimDuration, SimTime};

fn t(secs: f64) -> SimTime {
    SimTime::from_secs_f64(secs)
}

fn probe_of(out: &[CpAction]) -> Probe {
    out.iter()
        .find_map(|a| match a {
            CpAction::SendProbe(p) => Some(*p),
            _ => None,
        })
        .expect("probe emitted")
}

fn timer_delay(out: &[CpAction]) -> SimDuration {
    out.iter()
        .find_map(|a| match a {
            CpAction::StartTimer { after, .. } => Some(*after),
            _ => None,
        })
        .expect("timer armed")
}

/// §2: "Defining now Δ = L_ideal/L_nom" with the §3 values
/// "L_ideal = 10⁶ and L_nom = 10 (yielding Δ = 10⁵)".
#[test]
fn delta_formula_and_paper_value() {
    let cfg = SappDeviceConfig {
        l_ideal: 1e6,
        l_nom: 10.0,
    };
    assert_eq!(cfg.delta(), 100_000);
    // General formula on another point.
    let cfg = SappDeviceConfig {
        l_ideal: 5e5,
        l_nom: 25.0,
    };
    assert_eq!(cfg.delta(), 20_000);
}

/// §2: "On receipt of a probe, this counter is incremented by the natural
/// ∆, and a reply is sent to the probing CP with as parameter the (just
/// updated) value of pc."
#[test]
fn pc_reply_carries_post_increment_value() {
    let mut dev = SappDevice::new(DeviceId(0), SappDeviceConfig::paper_default());
    let r = dev.on_probe(
        t(0.0),
        Probe {
            cp: CpId(1),
            seq: 0,
        },
    );
    let ReplyBody::Sapp { pc, .. } = r.body else {
        panic!()
    };
    assert_eq!(
        pc, 100_000,
        "pc must be the just-updated value, not the old one"
    );
}

/// §3: "In all simulation studies in this paper TOF equals 0.022 […] and
/// TOS equals 0.021"; "Probes are retransmitted maximally three times."
#[test]
fn timeout_constants_and_retry_budget() {
    let c = ProbeCycleConfig::paper_default();
    assert_eq!(c.tof.as_secs_f64(), 0.022);
    assert_eq!(c.tos.as_secs_f64(), 0.021);
    assert_eq!(c.max_retransmissions, 3);
}

/// §3: "The values for the parameters […] are given by [1]: α_inc = 2 and
/// α_dec = 3/2. Other important parameter values […]: β = 3/2,
/// L_ideal = 10⁶ and L_nom = 10 […], δ_min = 0.02 and δ_max = 10."
#[test]
fn sapp_paper_constants() {
    let c = SappConfig::paper_default();
    assert_eq!(c.alpha_inc, 2.0);
    assert_eq!(c.alpha_dec, 1.5);
    assert_eq!(c.beta, 1.5);
    assert_eq!(c.l_ideal, 1e6);
    assert_eq!(c.delta_min.as_secs_f64(), 0.02);
    assert_eq!(c.delta_max.as_secs_f64(), 10.0);
}

/// Eq. (1), first clause: `δ' = min(α_inc · δ, δ_max) if L_exp > β·L_ideal`
/// — checked at the exact boundary: `L_exp = β·L_ideal` must NOT increase
/// (strict inequality in the paper).
#[test]
fn eq1_boundary_is_strict() {
    let mut cfg = SappConfig::paper_default();
    cfg.initial_delay = SimDuration::from_secs(1);
    let mut cp = SappCp::new(CpId(0), cfg);
    let mut out = Vec::new();
    cp.start(t(0.0), &mut out);
    let p1 = probe_of(&out);
    out.clear();
    cp.on_reply(
        t(1.0),
        &Reply {
            probe: p1,
            device: DeviceId(0),
            body: ReplyBody::Sapp {
                pc: 0,
                last_probers: [None, None],
            },
        },
        &mut out,
    );
    let wake = out
        .iter()
        .find_map(|a| match a {
            CpAction::StartTimer { token, .. } => Some(*token),
            _ => None,
        })
        .unwrap();
    out.clear();
    cp.on_timer(t(2.0), wake, &mut out);
    let p2 = probe_of(&out);
    out.clear();
    // Exactly L_exp = 1.5e6 = β·L_ideal over 1 second.
    cp.on_reply(
        t(2.0),
        &Reply {
            probe: p2,
            device: DeviceId(0),
            body: ReplyBody::Sapp {
                pc: 1_500_000,
                last_probers: [None, None],
            },
        },
        &mut out,
    );
    assert_eq!(
        cp.delay(),
        SimDuration::from_secs(1),
        "L_exp == β·L_ideal sits in the dead band (strict >)"
    );
    assert_eq!(cp.adaptation_stats().holds, 1);
}

/// §2, Fig. 1: the first cycle timeout is TOF; after a retransmission the
/// timeout is TOS.
#[test]
fn fig1_timeout_sequencing() {
    let mut cp = SappCp::new(CpId(0), SappConfig::paper_default());
    let mut out = Vec::new();
    cp.start(t(0.0), &mut out);
    assert_eq!(timer_delay(&out), SimDuration::from_millis(22));
    let tok = out
        .iter()
        .find_map(|a| match a {
            CpAction::StartTimer { token, .. } => Some(*token),
            _ => None,
        })
        .unwrap();
    out.clear();
    cp.on_timer(t(0.022), tok, &mut out);
    assert_eq!(timer_delay(&out), SimDuration::from_millis(21));
}

/// §5: "The value of δ_min has been set to 0.1, and d_min equals 0.5."
/// Derived: L_nom = 10, f_max = 2.
#[test]
fn dcpp_paper_constants() {
    let c = DcppConfig::paper_default();
    assert_eq!(c.delta_min.as_secs_f64(), 0.1);
    assert_eq!(c.d_min.as_secs_f64(), 0.5);
    assert_eq!(c.l_nom(), 10.0);
    assert_eq!(c.f_max(), 2.0);
}

/// §4: "nt′ is computed as nt′ = max{nt, t} + ∆(nt, t)" and the reply
/// parameter is "the delay nt′ − t" — checked on a concrete trace.
#[test]
fn dcpp_nt_recurrence_trace() {
    let mut dev = DcppDevice::new(DeviceId(0), DcppConfig::paper_default());
    // Probe 1 at t = 0: nt' = max(floor) = 0.5; wait = 0.5.
    let r1 = dev.on_probe(
        t(0.0),
        Probe {
            cp: CpId(1),
            seq: 0,
        },
    );
    let ReplyBody::Dcpp { wait } = r1.body else {
        panic!()
    };
    assert_eq!(wait.as_secs_f64(), 0.5);
    assert_eq!(dev.next_slot(), t(0.5));
    // Probe 2 at t = 0.2: serialised slot = 0.5 + 0.1 = 0.6; floor 0.7
    // wins: nt' = 0.7, wait = 0.5.
    let r2 = dev.on_probe(
        t(0.2),
        Probe {
            cp: CpId(2),
            seq: 0,
        },
    );
    let ReplyBody::Dcpp { wait } = r2.body else {
        panic!()
    };
    assert_eq!(wait.as_secs_f64(), 0.5);
    assert_eq!(dev.next_slot(), t(0.7));
    // Probe 3 at t = 0.21: serialised 0.8 > floor 0.71: wait = 0.59.
    let r3 = dev.on_probe(
        t(0.21),
        Probe {
            cp: CpId(3),
            seq: 0,
        },
    );
    let ReplyBody::Dcpp { wait } = r3.body else {
        panic!()
    };
    assert!((wait.as_secs_f64() - 0.59).abs() < 1e-9);
    assert_eq!(dev.next_slot(), t(0.8));
}

/// §4: "the delay between two probe cycles is now directly determined by
/// the device" — the CP arms its wake timer with exactly the replied wait.
#[test]
fn dcpp_cp_obeys_wait_verbatim() {
    use presence_core::DcppCp;
    let mut cp = DcppCp::new(CpId(4), DcppConfig::paper_default());
    let mut out = Vec::new();
    cp.start(t(0.0), &mut out);
    let probe = probe_of(&out);
    out.clear();
    let odd_wait = SimDuration::from_nanos(123_456_789);
    cp.on_reply(
        t(0.001),
        &Reply {
            probe,
            device: DeviceId(0),
            body: ReplyBody::Dcpp { wait: odd_wait },
        },
        &mut out,
    );
    assert_eq!(timer_delay(&out), odd_wait);
}

/// §2: the overlay field — "letting the device, on each probe, return the
/// ids of the last two (distinct) processes that probed it".
#[test]
fn overlay_field_is_last_two_distinct() {
    let mut dev = SappDevice::new(DeviceId(0), SappDeviceConfig::paper_default());
    dev.on_probe(
        t(0.0),
        Probe {
            cp: CpId(5),
            seq: 0,
        },
    );
    dev.on_probe(
        t(0.1),
        Probe {
            cp: CpId(5),
            seq: 1,
        },
    ); // repeat: not distinct
    dev.on_probe(
        t(0.2),
        Probe {
            cp: CpId(6),
            seq: 0,
        },
    );
    let r = dev.on_probe(
        t(0.3),
        Probe {
            cp: CpId(7),
            seq: 0,
        },
    );
    let ReplyBody::Sapp { last_probers, .. } = r.body else {
        panic!()
    };
    assert_eq!(last_probers, [Some(CpId(6)), Some(CpId(5))]);
}

/// §2: "the maximal frequency at which a CP may probe a device — given
/// that the protocol is in a stabilized situation — is given by
/// min(1/δ_min, β·L_nom)". With the paper's numbers: min(50, 15) = 15/s.
/// We check the weaker, machine-checkable half: the CP's frequency can
/// never exceed 1/δ_min.
#[test]
fn sapp_frequency_cap() {
    let cfg = SappConfig::paper_default();
    let mut cp = SappCp::new(CpId(0), cfg);
    let mut out = Vec::new();
    cp.start(t(0.0), &mut out);
    // Whatever happens, δ ≥ δ_min, so frequency ≤ 50/s.
    assert!(cp.frequency() <= 1.0 / cfg.delta_min.as_secs_f64() + 1e-9);
}
