//! The engine-agnostic trace model the simulation layer fills.
//!
//! A [`TraceModel`] is ordinary data — no handles into a live simulation —
//! so it can be built from either engine (sequential or regioned) and
//! compared across them. Two invariants make regioned traces bit-identical
//! to sequential ones:
//!
//! * every point carries its global actor track and virtual time, and the
//!   writer orders output by construction, not by engine internals;
//! * barrier marks (which exist only in regioned runs) live in their own
//!   field, so stripping [`TraceModel::barriers`] recovers the
//!   engine-invariant trace.

use presence_des::{BarrierMark, EngineEvent};

/// One step of a probe→reply lifecycle, in flow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// CP handed the probe to the network.
    ProbeSend,
    /// Device received the probe.
    ProbeRecv,
    /// Device handed the reply to the network (after processing).
    ReplySend,
    /// CP received the reply — the cycle completed.
    ReplyRecv,
}

/// What a [`TracePoint`] records on its track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKind {
    /// A probe→reply lifecycle step, correlated across tracks by `id`
    /// (the writer stitches the phases into one Perfetto flow).
    Flow {
        /// Flow correlation id (unique per probe cycle).
        id: u64,
        /// Which lifecycle step this is.
        phase: FlowPhase,
    },
    /// A CP declared the device absent.
    Absent,
    /// The churn process switched regimes (`switch` counts from 1).
    RegimeSwitch {
        /// Ordinal of the switch (1-based).
        switch: u64,
    },
}

/// One timestamped point on an actor's track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePoint {
    /// Virtual time in nanoseconds.
    pub time_ns: u64,
    /// Index into [`TraceModel::tracks`].
    pub track: u32,
    /// What happened.
    pub kind: PointKind,
}

/// One named timeline (a Perfetto "thread").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Track {
    /// Display name (e.g. `cp3`, `device`, `plane0`, `churn`).
    pub name: String,
    /// Global actor index backing this track, when there is one — engine
    /// events are routed onto tracks through this mapping.
    pub actor: Option<usize>,
}

/// A named counter series (a Perfetto counter track).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTrack {
    /// Counter name (e.g. `device.load`, `cp3.frequency`).
    pub name: String,
    /// `(time_ns, value)` samples in non-decreasing time order.
    pub samples: Vec<(u64, f64)>,
}

/// Everything one traced run produced.
#[derive(Debug, Default)]
pub struct TraceModel {
    /// Actor tracks, in tid order (track index == Perfetto tid).
    pub tracks: Vec<Track>,
    /// Flow and instant points emitted by the actors.
    pub points: Vec<TracePoint>,
    /// Counter tracks.
    pub counters: Vec<CounterTrack>,
    /// The engine's structured stream (dispatch/timer events), already in
    /// canonical `(time, actor)` order. Empty unless engine tracing was
    /// requested — it is by far the densest part of a trace.
    pub engine: Vec<EngineEvent>,
    /// Window-barrier marks — regioned runs only. Clearing this field
    /// yields the engine-invariant trace (the regioned-vs-sequential
    /// byte-identity tests do exactly that).
    pub barriers: Vec<BarrierMark>,
}

impl TraceModel {
    /// Registers a track and returns its index (the Perfetto tid).
    pub fn add_track(&mut self, name: impl Into<String>, actor: Option<usize>) -> u32 {
        let tid = u32::try_from(self.tracks.len()).expect("track count fits u32");
        self.tracks.push(Track {
            name: name.into(),
            actor,
        });
        tid
    }

    /// Records a point (flow step or instant) on `track`.
    pub fn push_point(&mut self, time_ns: u64, track: u32, kind: PointKind) {
        self.points.push(TracePoint {
            time_ns,
            track,
            kind,
        });
    }

    /// Registers a counter series (samples must be time-sorted).
    pub fn add_counter(&mut self, name: impl Into<String>, samples: Vec<(u64, f64)>) {
        debug_assert!(samples.windows(2).all(|w| w[0].0 <= w[1].0));
        self.counters.push(CounterTrack {
            name: name.into(),
            samples,
        });
    }

    /// The track index backing a global actor id, if one was registered.
    #[must_use]
    pub fn track_of_actor(&self, actor: usize) -> Option<u32> {
        self.tracks
            .iter()
            .position(|t| t.actor == Some(actor))
            .map(|i| u32::try_from(i).expect("track count fits u32"))
    }
}
