//! Serialises a [`TraceModel`] to the Chrome JSON trace format.
//!
//! The output loads directly in Perfetto's trace viewer (and in Chrome's
//! legacy `about:tracing`): one process (pid 0) with one named thread per
//! actor track, dur-0 `X` slices for lifecycle points (so flow arrows have
//! slices to bind to), a real-duration `process` slice on the device track
//! for each probe's service time, `s`/`t`/`f` flow events stitching every
//! probe→reply lifecycle across the network hops, `i` instants for absence
//! verdicts / regime switches / region barriers, and `C` counter samples.
//!
//! Output is byte-deterministic: events are emitted in model order (which
//! the simulation layer constructs region-invariantly), object keys are
//! insertion-ordered, and floats use shortest round-trip formatting — the
//! properties the golden-fixture and regioned-equivalence tests pin.

use crate::model::{FlowPhase, PointKind, TraceModel};
use presence_des::EngineEventKind;
use serde::Value;
use std::collections::HashMap;

/// Microsecond timestamp for Perfetto (fractional µs keep full ns
/// precision as the shortest round-trip decimal).
#[allow(clippy::cast_precision_loss)]
fn ts_us(time_ns: u64) -> f64 {
    time_ns as f64 / 1000.0
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

fn push_event(out: &mut String, first: &mut bool, event: &Value) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(&serde_json::to_string(event).expect("value serialisation is infallible"));
}

fn phase_slice_name(phase: FlowPhase) -> &'static str {
    match phase {
        FlowPhase::ProbeSend => "probe_send",
        FlowPhase::ProbeRecv => "probe_recv",
        FlowPhase::ReplySend => "reply_send",
        FlowPhase::ReplyRecv => "reply_recv",
    }
}

/// `s` begins a flow at the probe send, `t` steps it through the device,
/// `f` finishes it at the reply receive.
fn phase_flow_ph(phase: FlowPhase) -> &'static str {
    match phase {
        FlowPhase::ProbeSend => "s",
        FlowPhase::ProbeRecv | FlowPhase::ReplySend => "t",
        FlowPhase::ReplyRecv => "f",
    }
}

fn engine_slice_name(kind: EngineEventKind) -> &'static str {
    match kind {
        EngineEventKind::Dispatch => "dispatch",
        EngineEventKind::TimerArm => "timer_arm",
        EngineEventKind::TimerCancel => "timer_cancel",
        EngineEventKind::TimerFire => "timer_fire",
    }
}

/// Renders the model as a Chrome JSON trace (`{"traceEvents":[...]}`),
/// one event per line.
#[must_use]
pub fn write_chrome_json(model: &TraceModel) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;

    // Process + thread metadata name the tracks in the viewer.
    push_event(
        &mut out,
        &mut first,
        &obj(vec![
            ("name", s("process_name")),
            ("ph", s("M")),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(0)),
            ("args", obj(vec![("name", s("presence"))])),
        ]),
    );
    let barrier_tid = model.tracks.len() as u64;
    let thread_meta = |out: &mut String, first: &mut bool, tid: u64, name: &str| {
        push_event(
            out,
            first,
            &obj(vec![
                ("name", s("thread_name")),
                ("ph", s("M")),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(tid)),
                ("args", obj(vec![("name", s(name))])),
            ]),
        );
    };
    for (tid, track) in model.tracks.iter().enumerate() {
        thread_meta(&mut out, &mut first, tid as u64, &track.name);
    }
    if !model.barriers.is_empty() {
        thread_meta(&mut out, &mut first, barrier_tid, "region");
    }

    // Device service spans: a real-duration `process` slice per probe that
    // has both its recv and its send on the same track.
    let mut recv_at: HashMap<(u32, u64), u64> = HashMap::new();
    for point in &model.points {
        if let PointKind::Flow {
            id,
            phase: FlowPhase::ProbeRecv,
        } = point.kind
        {
            recv_at.insert((point.track, id), point.time_ns);
        }
    }
    for point in &model.points {
        let PointKind::Flow { id, phase } = point.kind else {
            continue;
        };
        if phase != FlowPhase::ReplySend {
            continue;
        }
        let Some(&begin) = recv_at.get(&(point.track, id)) else {
            continue;
        };
        push_event(
            &mut out,
            &mut first,
            &obj(vec![
                ("name", s("process")),
                ("cat", s("device")),
                ("ph", s("X")),
                ("ts", Value::F64(ts_us(begin))),
                ("dur", Value::F64(ts_us(point.time_ns - begin))),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(u64::from(point.track))),
                ("args", obj(vec![("flow", Value::U64(id))])),
            ]),
        );
    }

    // Lifecycle points: a dur-0 slice (the flow's anchor) plus the flow
    // event itself; instants for verdicts and regime switches.
    for point in &model.points {
        let tid = Value::U64(u64::from(point.track));
        let ts = Value::F64(ts_us(point.time_ns));
        match point.kind {
            PointKind::Flow { id, phase } => {
                push_event(
                    &mut out,
                    &mut first,
                    &obj(vec![
                        ("name", s(phase_slice_name(phase))),
                        ("cat", s("probe")),
                        ("ph", s("X")),
                        ("ts", ts.clone()),
                        ("dur", Value::F64(0.0)),
                        ("pid", Value::U64(0)),
                        ("tid", tid.clone()),
                        ("args", obj(vec![("flow", Value::U64(id))])),
                    ]),
                );
                let mut fields = vec![
                    ("name", s("probe")),
                    ("cat", s("probe")),
                    ("ph", s(phase_flow_ph(phase))),
                    ("id", Value::U64(id)),
                    ("ts", ts),
                    ("pid", Value::U64(0)),
                    ("tid", tid),
                ];
                if phase == FlowPhase::ReplyRecv {
                    // Bind the finish to the enclosing slice's start.
                    fields.push(("bp", s("e")));
                }
                push_event(&mut out, &mut first, &obj(fields));
            }
            PointKind::Absent => push_event(
                &mut out,
                &mut first,
                &obj(vec![
                    ("name", s("absent")),
                    ("cat", s("verdict")),
                    ("ph", s("i")),
                    ("ts", ts),
                    ("pid", Value::U64(0)),
                    ("tid", tid),
                    ("s", s("t")),
                ]),
            ),
            PointKind::RegimeSwitch { switch } => push_event(
                &mut out,
                &mut first,
                &obj(vec![
                    ("name", s("regime_switch")),
                    ("cat", s("regime")),
                    ("ph", s("i")),
                    ("ts", ts),
                    ("pid", Value::U64(0)),
                    ("tid", tid),
                    ("s", s("t")),
                    ("args", obj(vec![("switch", Value::U64(switch))])),
                ]),
            ),
        }
    }

    // Counter samples.
    for counter in &model.counters {
        for &(time_ns, value) in &counter.samples {
            push_event(
                &mut out,
                &mut first,
                &obj(vec![
                    ("name", s(&counter.name)),
                    ("ph", s("C")),
                    ("ts", Value::F64(ts_us(time_ns))),
                    ("pid", Value::U64(0)),
                    ("args", obj(vec![("value", Value::F64(value))])),
                ]),
            );
        }
    }

    // The engine's structured stream, routed onto the actor tracks.
    for event in &model.engine {
        let Some(track) = model.track_of_actor(event.actor.index()) else {
            continue;
        };
        push_event(
            &mut out,
            &mut first,
            &obj(vec![
                ("name", s(engine_slice_name(event.kind))),
                ("cat", s("engine")),
                ("ph", s("X")),
                ("ts", Value::F64(ts_us(event.time.as_nanos()))),
                ("dur", Value::F64(0.0)),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(u64::from(track))),
            ]),
        );
    }

    // Barrier marks (regioned runs only): instants plus the two derived
    // region counters.
    let mut exchanged_total = 0;
    for (index, mark) in model.barriers.iter().enumerate() {
        let ts = Value::F64(ts_us(mark.time.as_nanos()));
        push_event(
            &mut out,
            &mut first,
            &obj(vec![
                ("name", s("barrier")),
                ("cat", s("region")),
                ("ph", s("i")),
                ("ts", ts.clone()),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(barrier_tid)),
                ("s", s("t")),
                ("args", obj(vec![("exchanged", Value::U64(mark.exchanged))])),
            ]),
        );
        exchanged_total += mark.exchanged;
        #[allow(clippy::cast_precision_loss)]
        for (name, value) in [
            ("region.windows_executed", (index + 1) as f64),
            ("region.barrier_exchanges", exchanged_total as f64),
        ] {
            push_event(
                &mut out,
                &mut first,
                &obj(vec![
                    ("name", s(name)),
                    ("ph", s("C")),
                    ("ts", ts.clone()),
                    ("pid", Value::U64(0)),
                    ("args", obj(vec![("value", Value::F64(value))])),
                ]),
            );
        }
    }

    out.push_str("\n]}\n");
    out
}
