//! Structural invariants a well-formed presence trace must satisfy.
//!
//! Checked by the CI trace stage and the proptest battery: phases are from
//! the known set, every sliced/instant event lands on a named track, every
//! flow begins before it ends, and every counter series is time-monotone.

use crate::reader::ChromeTrace;
use std::collections::{HashMap, HashSet};

/// Summary counts from a successful validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events.
    pub events: usize,
    /// Named tracks (`thread_name` metadata events).
    pub tracks: usize,
    /// `X` slices.
    pub slices: usize,
    /// `i` instants.
    pub instants: usize,
    /// Flows started (`s`).
    pub flows_started: usize,
    /// Flows finished (`f`).
    pub flows_finished: usize,
    /// Distinct counter names (`C`).
    pub counter_tracks: usize,
}

#[derive(Default)]
struct FlowAgg {
    start: Option<f64>,
    finish: Option<f64>,
    steps: Vec<f64>,
}

/// Validates `trace`, returning summary counts.
///
/// # Errors
///
/// Returns a description of the first violated invariant: an unknown
/// phase, an unnamed track, a negative-duration slice, a flow that ends
/// before it starts (or never started), a duplicated flow endpoint, or a
/// counter whose samples go backwards in time.
pub fn validate(trace: &ChromeTrace) -> Result<TraceCheck, String> {
    let mut check = TraceCheck {
        events: trace.events.len(),
        ..TraceCheck::default()
    };
    let named: HashSet<u64> = trace
        .events
        .iter()
        .filter(|e| e.ph == "M" && e.name == "thread_name")
        .filter_map(|e| e.tid)
        .collect();
    check.tracks = named.len();
    let mut flows: HashMap<u64, FlowAgg> = HashMap::new();
    let mut counter_last: HashMap<&str, f64> = HashMap::new();
    for (index, event) in trace.events.iter().enumerate() {
        match event.ph.as_str() {
            "M" => {}
            "X" | "i" | "s" | "t" | "f" => {
                let tid = event
                    .tid
                    .ok_or_else(|| format!("event {index} ({}) has no tid", event.ph))?;
                if !named.contains(&tid) {
                    return Err(format!(
                        "event {index} ({}) on unnamed track {tid}",
                        event.ph
                    ));
                }
                match event.ph.as_str() {
                    "X" => {
                        check.slices += 1;
                        let dur = event
                            .dur
                            .ok_or_else(|| format!("slice {index} has no dur"))?;
                        if dur < 0.0 {
                            return Err(format!("slice {index} has negative dur {dur}"));
                        }
                    }
                    "i" => check.instants += 1,
                    flow_ph => {
                        let id = event
                            .id
                            .ok_or_else(|| format!("flow event {index} has no id"))?;
                        let agg = flows.entry(id).or_default();
                        match flow_ph {
                            "s" => {
                                if agg.start.replace(event.ts).is_some() {
                                    return Err(format!("flow {id} started twice"));
                                }
                                check.flows_started += 1;
                            }
                            "t" => agg.steps.push(event.ts),
                            _ => {
                                if agg.finish.replace(event.ts).is_some() {
                                    return Err(format!("flow {id} finished twice"));
                                }
                                check.flows_finished += 1;
                            }
                        }
                    }
                }
            }
            "C" => {
                let last = counter_last.entry(event.name.as_str()).or_insert(f64::MIN);
                if event.ts < *last {
                    return Err(format!(
                        "counter `{}` goes backwards in time at event {index} ({} < {})",
                        event.name, event.ts, last
                    ));
                }
                *last = event.ts;
            }
            other => return Err(format!("event {index} has unknown phase `{other}`")),
        }
    }
    check.counter_tracks = counter_last.len();
    for (id, agg) in &flows {
        let Some(start) = agg.start else {
            return Err(format!("flow {id} has steps/finish but never started"));
        };
        for &step in &agg.steps {
            if step < start {
                return Err(format!("flow {id} steps before it starts"));
            }
        }
        if let Some(finish) = agg.finish {
            if finish < start {
                return Err(format!(
                    "flow {id} finishes at {finish} before starting at {start}"
                ));
            }
            // Steps *after* the finish are legal: the device may process a
            // retransmitted probe after an earlier reply already completed
            // the cycle.
        }
    }
    Ok(check)
}
