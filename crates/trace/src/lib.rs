//! Chrome/Perfetto trace export and terminal analysis for presence
//! simulations.
//!
//! The simulation layer fills a [`TraceModel`] — actor tracks, probe→reply
//! flow points, counter series, the engine's structured event stream, and
//! (regioned runs only) window-barrier marks. This crate turns that model
//! into the [Chrome JSON trace format] that Perfetto's trace viewer loads
//! directly ([`chrome::write_chrome_json`]), parses such a file back
//! ([`reader::parse`]), checks its structural invariants
//! ([`validate::validate`]), and distils terminal-friendly statistics from
//! it ([`stats::analyze`] — the `spotter` bin's engine).
//!
//! Everything is std-only: JSON goes through the workspace's serde shim,
//! so the output is byte-deterministic (insertion-ordered object keys,
//! shortest round-trip float formatting) — deterministic enough to pin a
//! golden fixture bit-for-bit and to compare a regioned run's trace
//! against the sequential engine's byte-for-byte.
//!
//! [Chrome JSON trace format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod model;
pub mod reader;
pub mod stats;
pub mod validate;

pub use chrome::write_chrome_json;
pub use model::{CounterTrack, FlowPhase, PointKind, TraceModel, TracePoint, Track};
pub use reader::{parse, ChromeEvent, ChromeTrace};
pub use stats::{analyze, SpotterReport};
pub use validate::{validate, TraceCheck};
