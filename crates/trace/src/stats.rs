//! Terminal-friendly analytics over a parsed trace — the `spotter` bin's
//! engine: busiest actors, the regime-switch timeline, per-phase fairness
//! (Jain's index over the per-CP frequency counters between switches), and
//! probe-cycle latency percentiles from the flow events.

use crate::reader::ChromeTrace;
use std::collections::HashMap;

/// Latency percentiles in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// One regime phase and its fairness figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseFairness {
    /// Phase start (µs).
    pub begin_us: f64,
    /// Phase end (µs).
    pub end_us: f64,
    /// Jain's fairness index over per-CP mean probe frequency in the
    /// phase (1.0 = perfectly fair), or `None` when no CP counter
    /// samples fall inside the phase.
    pub jain: Option<f64>,
}

/// Everything `spotter` prints.
#[derive(Debug, Clone, Default)]
pub struct SpotterReport {
    /// `(track name, activity)` sorted busiest-first, where activity is
    /// the number of slices and instants on the track.
    pub busiest: Vec<(String, usize)>,
    /// `(time µs, switch ordinal)` of every regime switch, in time order.
    pub regime_switches: Vec<(f64, u64)>,
    /// Fairness per regime phase (phases are delimited by the switches
    /// and the trace's own time bounds).
    pub phases: Vec<PhaseFairness>,
    /// Probe cycles started (`s` flow events).
    pub cycles_started: usize,
    /// Probe cycles completed (`s` matched by `f`).
    pub cycles_completed: usize,
    /// Latency percentiles over completed cycles.
    pub cycle_latency: Option<Percentiles>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let index = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

fn jain(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return Some(1.0);
    }
    #[allow(clippy::cast_precision_loss)]
    Some(sum * sum / (values.len() as f64 * sum_sq))
}

/// Distils a [`SpotterReport`] from a parsed trace, keeping the `top_n`
/// busiest tracks.
#[must_use]
pub fn analyze(trace: &ChromeTrace, top_n: usize) -> SpotterReport {
    let mut report = SpotterReport::default();

    // Busiest tracks: slices + instants per tid.
    let mut activity: HashMap<u64, usize> = HashMap::new();
    for event in &trace.events {
        if matches!(event.ph.as_str(), "X" | "i") {
            if let Some(tid) = event.tid {
                *activity.entry(tid).or_insert(0) += 1;
            }
        }
    }
    let mut busiest: Vec<(String, usize)> = activity
        .into_iter()
        .map(|(tid, count)| {
            let name = trace
                .thread_name(tid)
                .map_or_else(|| format!("tid{tid}"), str::to_string);
            (name, count)
        })
        .collect();
    busiest.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    busiest.truncate(top_n);
    report.busiest = busiest;

    // Regime-switch timeline.
    for event in &trace.events {
        if event.ph == "i" && event.name == "regime_switch" {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let ordinal = event.arg_f64("switch").unwrap_or(0.0) as u64;
            report.regime_switches.push((event.ts, ordinal));
        }
    }
    report
        .regime_switches
        .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    // Per-phase fairness from the per-CP frequency counters.
    let mut cp_samples: HashMap<&str, Vec<(f64, f64)>> = HashMap::new();
    let mut bounds: Option<(f64, f64)> = None;
    for event in &trace.events {
        if event.ph == "M" {
            continue;
        }
        let (lo, hi) = bounds.get_or_insert((event.ts, event.ts));
        *lo = lo.min(event.ts);
        *hi = hi.max(event.ts);
        if event.ph == "C" && event.name.starts_with("cp") && event.name.ends_with(".frequency") {
            if let Some(value) = event.arg_f64("value") {
                cp_samples
                    .entry(event.name.as_str())
                    .or_default()
                    .push((event.ts, value));
            }
        }
    }
    if let Some((lo, hi)) = bounds {
        let mut cuts = vec![lo];
        cuts.extend(report.regime_switches.iter().map(|&(ts, _)| ts));
        cuts.push(hi);
        for window in cuts.windows(2) {
            let (begin, end) = (window[0], window[1]);
            let means: Vec<f64> = cp_samples
                .values()
                .filter_map(|samples| {
                    let in_phase: Vec<f64> = samples
                        .iter()
                        .filter(|&&(ts, _)| ts >= begin && ts <= end)
                        .map(|&(_, v)| v)
                        .collect();
                    if in_phase.is_empty() {
                        None
                    } else {
                        #[allow(clippy::cast_precision_loss)]
                        Some(in_phase.iter().sum::<f64>() / in_phase.len() as f64)
                    }
                })
                .collect();
            report.phases.push(PhaseFairness {
                begin_us: begin,
                end_us: end,
                jain: jain(&means),
            });
        }
    }

    // Probe-cycle latency from the flow events.
    let mut starts: HashMap<u64, f64> = HashMap::new();
    let mut latencies: Vec<f64> = Vec::new();
    for event in &trace.events {
        match event.ph.as_str() {
            "s" => {
                if let Some(id) = event.id {
                    starts.insert(id, event.ts);
                    report.cycles_started += 1;
                }
            }
            "f" => {
                if let Some(begin) = event.id.and_then(|id| starts.get(&id)) {
                    latencies.push(event.ts - begin);
                    report.cycles_completed += 1;
                }
            }
            _ => {}
        }
    }
    if !latencies.is_empty() {
        latencies.sort_by(f64::total_cmp);
        report.cycle_latency = Some(Percentiles {
            p50: percentile(&latencies, 50.0),
            p90: percentile(&latencies, 90.0),
            p99: percentile(&latencies, 99.0),
        });
    }
    report
}
