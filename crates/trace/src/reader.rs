//! Parses a Chrome JSON trace file back into typed events.
//!
//! The reader is intentionally tolerant of fields it does not know (it
//! keeps raw `args`) but strict about the structure it relies on: a top
//! level `traceEvents` array of objects, each with at least `ph` — the
//! contract [`crate::validate`] and the `spotter` analytics build on.

use serde::Value;

/// One parsed trace event (a line of the `traceEvents` array).
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name (empty when absent).
    pub name: String,
    /// Phase: `M`, `X`, `i`, `s`, `t`, `f`, `C`, …
    pub ph: String,
    /// Event category (empty when absent).
    pub cat: String,
    /// Timestamp in microseconds (0 for metadata events).
    pub ts: f64,
    /// Slice duration in microseconds (`X` events).
    pub dur: Option<f64>,
    /// Process id.
    pub pid: u64,
    /// Thread id, when present.
    pub tid: Option<u64>,
    /// Flow correlation id (`s`/`t`/`f` events).
    pub id: Option<u64>,
    /// Raw `args` object fields.
    pub args: Vec<(String, Value)>,
}

impl ChromeEvent {
    /// Convenience: a named argument as `f64`, if present and numeric.
    #[must_use]
    pub fn arg_f64(&self, name: &str) -> Option<f64> {
        self.args
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| {
                #[allow(clippy::cast_precision_loss)]
                match v {
                    Value::F64(x) => Some(*x),
                    Value::U64(n) => Some(*n as f64),
                    Value::I64(n) => Some(*n as f64),
                    _ => None,
                }
            })
    }

    /// Convenience: a named argument as a string, if present.
    #[must_use]
    pub fn arg_str(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| {
                if let Value::Str(s) = v {
                    Some(s.as_str())
                } else {
                    None
                }
            })
    }
}

/// A parsed trace: the `traceEvents` array in file order.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    /// Every event, in file order.
    pub events: Vec<ChromeEvent>,
}

impl ChromeTrace {
    /// The name a `thread_name` metadata event gave `tid`, if any.
    #[must_use]
    pub fn thread_name(&self, tid: u64) -> Option<&str> {
        self.events
            .iter()
            .find(|e| e.ph == "M" && e.name == "thread_name" && e.tid == Some(tid))
            .and_then(|e| e.arg_str("name"))
    }
}

fn field<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn as_f64(v: &Value) -> Option<f64> {
    #[allow(clippy::cast_precision_loss)]
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        _ => None,
    }
}

/// Parses Chrome JSON trace text into a [`ChromeTrace`].
///
/// # Errors
///
/// Returns a description of the first structural problem: unparseable
/// JSON, a missing `traceEvents` array, or an event without a `ph`.
pub fn parse(json: &str) -> Result<ChromeTrace, String> {
    let root: Value = serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let fields = root
        .as_object()
        .ok_or_else(|| "trace root must be an object".to_string())?;
    let events = field(fields, "traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "trace must contain a `traceEvents` array".to_string())?;
    let mut parsed = Vec::with_capacity(events.len());
    for (index, event) in events.iter().enumerate() {
        let fields = event
            .as_object()
            .ok_or_else(|| format!("traceEvents[{index}] is not an object"))?;
        let ph = field(fields, "ph")
            .and_then(|v| {
                if let Value::Str(s) = v {
                    Some(s.clone())
                } else {
                    None
                }
            })
            .ok_or_else(|| format!("traceEvents[{index}] has no `ph`"))?;
        let string_of = |name: &str| -> String {
            match field(fields, name) {
                Some(Value::Str(s)) => s.clone(),
                _ => String::new(),
            }
        };
        parsed.push(ChromeEvent {
            name: string_of("name"),
            cat: string_of("cat"),
            ph,
            ts: field(fields, "ts").and_then(as_f64).unwrap_or(0.0),
            dur: field(fields, "dur").and_then(as_f64),
            pid: field(fields, "pid").and_then(as_u64).unwrap_or(0),
            tid: field(fields, "tid").and_then(as_u64),
            id: field(fields, "id").and_then(as_u64),
            args: field(fields, "args")
                .and_then(Value::as_object)
                .map(<[(String, Value)]>::to_vec)
                .unwrap_or_default(),
        });
    }
    Ok(ChromeTrace { events: parsed })
}
