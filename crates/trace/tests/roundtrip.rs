//! Deterministic end-to-end exercise of the writer, reader, validator,
//! and spotter analytics on a small hand-built model.

use presence_trace::{
    analyze, parse, validate, write_chrome_json, FlowPhase, PointKind, TraceModel,
};

fn sample_model() -> TraceModel {
    let mut model = TraceModel::default();
    let cp0 = model.add_track("cp0", Some(0));
    let cp1 = model.add_track("cp1", Some(1));
    let device = model.add_track("device", Some(2));
    let churn = model.add_track("churn", Some(3));
    // Two complete cycles on cp0, one in-flight on cp1.
    for (id, cp, t0) in [(1u64, cp0, 1_000_000u64), (2, cp0, 5_000_000)] {
        model.push_point(
            t0,
            cp,
            PointKind::Flow {
                id,
                phase: FlowPhase::ProbeSend,
            },
        );
        model.push_point(
            t0 + 200_000,
            device,
            PointKind::Flow {
                id,
                phase: FlowPhase::ProbeRecv,
            },
        );
        model.push_point(
            t0 + 450_000,
            device,
            PointKind::Flow {
                id,
                phase: FlowPhase::ReplySend,
            },
        );
        model.push_point(
            t0 + 700_000,
            cp,
            PointKind::Flow {
                id,
                phase: FlowPhase::ReplyRecv,
            },
        );
    }
    model.push_point(
        9_000_000,
        cp1,
        PointKind::Flow {
            id: 3,
            phase: FlowPhase::ProbeSend,
        },
    );
    model.push_point(9_500_000, cp1, PointKind::Absent);
    model.push_point(4_000_000, churn, PointKind::RegimeSwitch { switch: 1 });
    model.add_counter("cp0.frequency", vec![(2_000_000, 4.0), (6_000_000, 2.0)]);
    model.add_counter("cp1.frequency", vec![(2_000_000, 4.0), (6_000_000, 6.0)]);
    model.add_counter("device.load", vec![(1_000_000, 0.2), (8_000_000, 0.4)]);
    model
}

#[test]
fn writes_parses_validates_and_analyzes() {
    let json = write_chrome_json(&sample_model());
    assert!(json.starts_with("{\"traceEvents\":["));
    let trace = parse(&json).expect("parses");
    let check = validate(&trace).expect("validates");
    assert_eq!(check.tracks, 4);
    assert_eq!(check.flows_started, 3);
    assert_eq!(check.flows_finished, 2);
    assert_eq!(check.counter_tracks, 3);
    assert!(check.slices > 0 && check.instants == 2);

    let report = analyze(&trace, 3);
    assert_eq!(report.cycles_started, 3);
    assert_eq!(report.cycles_completed, 2);
    let latency = report.cycle_latency.expect("two completed cycles");
    assert!((latency.p50 - 700.0).abs() < 1e-9, "700 µs cycles");
    assert_eq!(report.regime_switches, vec![(4_000.0, 1)]);
    // Two phases around the switch; fairness defined in both (cp0+cp1
    // sampled at 2 ms and 6 ms).
    assert_eq!(report.phases.len(), 2);
    assert!(report.phases.iter().all(|p| p.jain.is_some()));
    // Phase 1: equal frequencies -> perfectly fair; phase 2: 2 vs 6.
    assert!((report.phases[0].jain.unwrap() - 1.0).abs() < 1e-9);
    assert!(report.phases[1].jain.unwrap() < 1.0);
    assert_eq!(report.busiest.len(), 3);
    assert_eq!(report.busiest[0].0, "device");
}

#[test]
fn output_is_byte_deterministic() {
    let a = write_chrome_json(&sample_model());
    let b = write_chrome_json(&sample_model());
    assert_eq!(a, b);
}

#[test]
fn reader_rejects_garbage() {
    assert!(parse("not json").is_err());
    assert!(parse("{}").is_err());
    assert!(parse("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
}
