//! Property battery for the trace writer: any model the simulation layer
//! can legally produce must serialise to a parseable Chrome JSON trace in
//! which every flow begins at or before its end and every counter series
//! is time-monotone — the invariants [`presence_trace::validate`] pins.

use presence_trace::{
    analyze, parse, validate, write_chrome_json, FlowPhase, PointKind, TraceModel,
};
use proptest::prelude::*;

/// A random-but-legal model: `cps` CP tracks plus a device track, `flows`
/// probe cycles with ordered phase times (some left incomplete), and a
/// couple of counter series with sorted sample times.
fn build_model(
    cps: usize,
    flows: Vec<(u64, u64, u64, u64, bool)>,
    counter_times: Vec<u64>,
) -> TraceModel {
    let mut model = TraceModel::default();
    let cp_tracks: Vec<u32> = (0..cps)
        .map(|i| model.add_track(format!("cp{i}"), Some(i)))
        .collect();
    let device = model.add_track("device", Some(cps));
    for (index, &(t0, d1, d2, d3, complete)) in flows.iter().enumerate() {
        let id = index as u64;
        let cp = cp_tracks[index % cps];
        let (t1, t2, t3) = (t0 + d1, t0 + d1 + d2, t0 + d1 + d2 + d3);
        model.push_point(
            t0,
            cp,
            PointKind::Flow {
                id,
                phase: FlowPhase::ProbeSend,
            },
        );
        model.push_point(
            t1,
            device,
            PointKind::Flow {
                id,
                phase: FlowPhase::ProbeRecv,
            },
        );
        model.push_point(
            t2,
            device,
            PointKind::Flow {
                id,
                phase: FlowPhase::ReplySend,
            },
        );
        if complete {
            model.push_point(
                t3,
                cp,
                PointKind::Flow {
                    id,
                    phase: FlowPhase::ReplyRecv,
                },
            );
        }
    }
    let mut times = counter_times;
    times.sort_unstable();
    for (i, track) in cp_tracks.iter().enumerate() {
        let _ = track;
        let samples: Vec<(u64, f64)> = times.iter().map(|&t| (t, (i + 1) as f64 * 0.25)).collect();
        model.add_counter(format!("cp{i}.frequency"), samples);
    }
    model.add_counter("device.load", times.iter().map(|&t| (t, 0.5)).collect());
    model
}

proptest! {
    /// Writer output always parses, validates, and satisfies the flow
    /// begin ≤ end and counter-monotonicity invariants.
    #[test]
    fn writer_output_validates(
        cps in 1usize..5,
        flows in proptest::collection::vec(
            (0u64..1_000_000_000, 0u64..5_000_000, 0u64..5_000_000, 0u64..5_000_000, any::<bool>()),
            1..40,
        ),
        counter_times in proptest::collection::vec(0u64..1_000_000_000, 1..30),
    ) {
        let model = build_model(cps, flows.clone(), counter_times);
        let json = write_chrome_json(&model);
        let trace = parse(&json).expect("writer output parses");
        let check = validate(&trace).expect("writer output validates");
        let completed = flows.iter().filter(|f| f.4).count();
        prop_assert_eq!(check.flows_started, flows.len());
        prop_assert_eq!(check.flows_finished, completed);
        prop_assert!(check.counter_tracks >= 2, "cp frequency + device load");
        // Flow begin <= end, re-derived independently of the validator:
        // every completed cycle's latency is non-negative.
        let report = analyze(&trace, 10);
        prop_assert_eq!(report.cycles_started, flows.len());
        prop_assert_eq!(report.cycles_completed, completed);
        if let Some(p) = report.cycle_latency {
            prop_assert!(p.p50 >= 0.0 && p.p50 <= p.p90 && p.p90 <= p.p99);
        }
    }

    /// The validator actually rejects a counter that goes backwards in
    /// time (the writer can't produce one; a hand-built trace can).
    #[test]
    fn validator_rejects_backwards_counter(at in 1_000u64..1_000_000) {
        let mut model = TraceModel::default();
        model.add_track("device", Some(0));
        model.counters.push(presence_trace::CounterTrack {
            name: "device.load".to_string(),
            samples: vec![(at, 1.0), (at - 1, 2.0)],
        });
        let json = write_chrome_json(&model);
        let trace = parse(&json).expect("parses");
        prop_assert!(validate(&trace).is_err());
    }
}
