//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real proptest cannot
//! be used. This shim implements the subset of its API that this workspace's
//! property tests exercise:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map`, integer/float range strategies, tuple
//!   strategies, [`Just`], [`prop_oneof!`], `prop::collection::vec`, and
//!   [`any`] for primitives,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs' generating seed
//!   (`PROPTEST_CASE_SEED=<n>` reruns exactly that case) instead of a
//!   minimised counterexample;
//! * **deterministic by default** — the RNG is seeded from the test name,
//!   so runs are reproducible without a persistence file;
//! * `PROPTEST_CASES` sets the *default* case count (low for fast CI, high
//!   for soak runs); an explicit `ProptestConfig::with_cases` wins, as in
//!   real proptest.

#![forbid(unsafe_code)]

use std::env;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG — xoshiro256++ seeded via SplitMix64 (self-contained, deterministic).
// ---------------------------------------------------------------------------

/// Deterministic RNG driving test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TestRng {
    /// Creates an RNG from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut z = seed;
        Self {
            s: [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ],
        }
    }

    /// Next raw 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)` (Lemire-free simple rejection).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates with `self`, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values; too many rejections fail the test.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Uniform choice among equally-weighted boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// Integer range strategies.
macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Guard the exclusive upper bound against floating-point rounding.
        if x >= self.end {
            self.end.next_down().max(self.start)
        } else {
            x
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).generate(rng) as f32
    }
}

// Tuple strategies.
macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly log-uniform magnitude — useful without the real
        // proptest's NaN/∞ corners, which this workspace filters anyway.
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.below(61) as i32 - 30) as f64;
        mantissa * exp.exp2()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{fffd}')
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror of the real crate (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is skipped, not failed.
    Reject(String),
    /// `prop_assert!` failed — the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Builds a rejection.
    #[must_use]
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Maximum rejected (assumed-away) cases before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config with an explicit case count. Like real proptest, an
    /// explicit count wins over the `PROPTEST_CASES` environment variable
    /// (which only changes the *default*).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Mirrors real proptest: PROPTEST_CASES sets the default case
        // count — lower for fast CI or higher for soak runs.
        let cases = env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 65_536,
        }
    }
}

/// Effective case count for a run (the configured count; the env variable
/// is folded in by [`ProptestConfig::default`]).
#[must_use]
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    config.cases
}

/// Runs `body` over `config.cases` generated cases. Used by [`proptest!`];
/// not part of the public API of real proptest.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let forced_seed: Option<u64> = env::var("PROPTEST_CASE_SEED")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        name_hash ^= u64::from(b);
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let cases = if forced_seed.is_some() {
        1
    } else {
        effective_cases(config)
    };
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < cases {
        let case_seed = forced_seed.unwrap_or_else(|| {
            let mut z = name_hash ^ case_index.rotate_left(32);
            splitmix64(&mut z)
        });
        let mut rng = TestRng::from_seed(case_seed);
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(reason)) if forced_seed.is_some() => {
                // A forced case regenerates identically; retrying would just
                // spin to the reject cap with a misleading message.
                panic!(
                    "{test_name}: the case for PROPTEST_CASE_SEED={case_seed} is \
                     rejected by prop_assume! ({reason}); nothing to replay"
                );
            }
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{test_name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed after {passed} passing case(s): {msg}\n\
                     rerun just this case with PROPTEST_CASE_SEED={case_seed}"
                );
            }
        }
        case_index += 1;
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng, Union,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Each function body runs once per generated case;
/// `prop_assert*`/`prop_assume!` short-circuit the case.
#[macro_export]
macro_rules! proptest {
    (@fns ($config:expr)) => {};
    (@fns ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(
                stringify!($name),
                &config,
                |rng: &mut $crate::TestRng| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    return Ok(());
                },
            );
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts within a property; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let x = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&x));
            let y = (-3i32..4).generate(&mut rng);
            assert!((-3..4).contains(&y));
            let z = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = collection::vec(0u8..255, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0u64..100, (a, b) in (0u32..10, 0u32..10)) {
            prop_assume!(x != 55);
            prop_assert!(x < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(x + 1, x);
        }
    }
}
