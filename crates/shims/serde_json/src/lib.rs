//! Offline stand-in for `serde_json`.
//!
//! Renders the shim `serde::Value` model to JSON text and parses it back.
//! Provides the workspace's used subset: [`to_string`], [`to_string_pretty`],
//! and [`from_str`]. Numbers keep `u64`/`i64` precision; floats use Rust's
//! shortest round-trip formatting; non-finite floats render as `null`.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // "1" would re-parse as an integer; keep floats floats where
                // it costs nothing (serde_json prints 1.0 as "1.0" too).
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them plainly.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| Error("bad \\u codepoint".to_string()))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid utf-8 in string".to_string()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&u64::MAX).unwrap(), "18446744073709551615");
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(from_str::<f64>("0.1").unwrap(), 0.1);
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.5f64, 2u64), (3.0, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(f64, u64)>>(&json).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }

    #[test]
    fn pretty_is_parseable() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_str::<u64>("riot").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
