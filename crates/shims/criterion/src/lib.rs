//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group` (`sample_size`, `throughput`, `bench_function`,
//! `finish`), `black_box`, `criterion_group!`, `criterion_main!` — with a
//! simple timing loop instead of criterion's statistical machinery: a short
//! warm-up, then `sample_size` timed samples of an adaptively-chosen
//! iteration batch, reporting median per-iteration time (and throughput
//! when configured).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 30;

/// Benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(name.as_ref(), DEFAULT_SAMPLE_SIZE, None, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks one function in this group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once(f: &mut impl FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Pick a batch size so one sample takes ≳ 1 ms (bounded to keep total
    // time sane for slow benchmarks).
    let mut iters = 1u64;
    loop {
        let t = time_once(&mut f, iters);
        if t >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| time_once(&mut f, iters).as_secs_f64() / iters as f64)
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let mut line = format!(
        "{name:<40} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            line.push_str(&format!("  thrpt: {:.3} Melem/s", n as f64 / median / 1e6));
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            line.push_str(&format!(
                "  thrpt: {:.3} MiB/s",
                n as f64 / median / (1024.0 * 1024.0)
            ));
        }
        _ => {}
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
