//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the shim `serde` crate's `to_value`/`from_value` model, by hand-parsing
//! the item's token stream (the environment has no syn/quote). Supported
//! shapes — everything this workspace derives on:
//!
//! * structs with named fields;
//! * tuple structs (newtype structs serialize transparently, wider ones as
//!   arrays);
//! * unit structs;
//! * enums with unit, tuple, and struct variants, in serde's
//!   externally-tagged representation.
//!
//! Generic types and `#[serde(...)]` attributes are intentionally not
//! supported; the derive fails loudly if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skips `#[...]` attributes and `pub` / `pub(...)` visibility starting at
/// `i`, returning the next index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 1; // '#'
            if i < tokens.len()
                && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
            {
                i += 1;
            }
            continue;
        }
        if i < tokens.len() && is_ident(&tokens[i], "pub") {
            i += 1;
            if i < tokens.len()
                && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
            continue;
        }
        return i;
    }
}

/// Counts the comma-separated items at angle-depth 0 in a token list
/// (for tuple struct/variant arity).
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1usize;
    let mut saw_item = false;
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_item = false;
                continue;
            }
            _ => {}
        }
        saw_item = true;
    }
    if !saw_item {
        fields -= 1; // trailing comma
    }
    fields
}

/// Parses named fields from the tokens of a brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            return Err(format!("expected field name, found {}", tokens[i]));
        };
        names.push(name.to_string());
        i += 1;
        if i >= tokens.len() || !is_punct(&tokens[i], ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        // Skip the type: everything until a comma at angle-depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(names)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let Some(TokenTree::Ident(name)) = tokens.get(i) else {
        return Err("expected type name".to_string());
    };
    let name = name.to_string();
    i += 1;

    if i < tokens.len() && is_punct(&tokens[i], '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }

    if kind == "struct" {
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Named(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("unexpected struct body: {other:?}")),
        };
        return Ok(Item::Struct { name, shape });
    }

    // Enum.
    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        return Err("expected enum body".to_string());
    };
    let body: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut j = 0;
    while j < body.len() {
        j = skip_attrs_and_vis(&body, j);
        if j >= body.len() {
            break;
        }
        let TokenTree::Ident(vname) = &body[j] else {
            return Err(format!("expected variant name, found {}", body[j]));
        };
        let vname = vname.to_string();
        j += 1;
        let shape = match body.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                j += 1;
                Shape::Named(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                j += 1;
                Shape::Tuple(count_tuple_fields(&inner))
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        while j < body.len() && !is_punct(&body[j], ',') {
            j += 1;
        }
        j += 1;
        variants.push(Variant { name: vname, shape });
    }
    Ok(Item::Enum { name, variants })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

/// Derives the shim `serde::Serialize` (`to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => {
                    let items: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for v in &variants {
                let vn = &v.name;
                let arm = match &v.shape {
                    Shape::Unit => format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{vn}(x0) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(x0))]),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let vals: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                            vals.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

/// Derives the shim `serde::Deserialize` (`from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("{{ let _ = v; Ok({name}) }}"),
                Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
                Shape::Tuple(n) => {
                    let gets: Vec<String> = (0..n)
                        .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                        .collect();
                    format!(
                        "{{\n\
                            let items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", v, {name:?}))?;\n\
                            if items.len() != {n} {{ return Err(::serde::DeError::msg(format!(\"expected {n} elements for {name}, found {{}}\", items.len()))); }}\n\
                            Ok({name}({}))\n\
                        }}",
                        gets.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let gets: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::get_field(obj, {f:?})?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "{{\n\
                            let obj = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", v, {name:?}))?;\n\
                            Ok({name} {{\n{}\n}})\n\
                        }}",
                        gets.join("\n")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push(format!("{vn:?} => Ok({name}::{vn}),")),
                    Shape::Tuple(1) => tagged_arms.push(format!(
                        "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Shape::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "{vn:?} => {{\n\
                                let items = inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", inner, {vn:?}))?;\n\
                                if items.len() != {n} {{ return Err(::serde::DeError::msg(format!(\"expected {n} elements for {name}::{vn}, found {{}}\", items.len()))); }}\n\
                                Ok({name}::{vn}({}))\n\
                            }}",
                            gets.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let gets: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::get_field(obj, {f:?})?)?,"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "{vn:?} => {{\n\
                                let obj = inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", inner, {vn:?}))?;\n\
                                Ok({name}::{vn} {{\n{}\n}})\n\
                            }}",
                            gets.join("\n")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::DeError::msg(format!(\"unknown unit variant {{other}} for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, inner) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::DeError::msg(format!(\"unknown variant {{other}} for {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             other => Err(::serde::DeError::expected(\"enum representation\", other, {name:?})),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n"),
            )
        }
    };
    code.parse().unwrap()
}
