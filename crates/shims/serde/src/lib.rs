//! Offline stand-in for the `serde` facade.
//!
//! The build environment for this workspace has no network access, so the
//! real serde cannot be vendored. This shim keeps the workspace's source
//! compatible with serde's *surface* — `#[derive(Serialize, Deserialize)]`
//! plus `serde_json::{to_string, to_string_pretty, from_str}` — while
//! implementing only what the workspace needs underneath: a self-describing
//! in-memory [`Value`] tree that the sibling `serde_json` shim renders to
//! and parses from JSON text.
//!
//! Fidelity notes (all visible to round-trip tests, none violated by them):
//!
//! * integers keep full `u64`/`i64` precision (they are not squeezed
//!   through `f64`);
//! * `f64` uses Rust's shortest round-trip `Display` formatting;
//! * non-finite floats serialize as `null` (matching serde_json's
//!   lossy-float behaviour closely enough for metrics structs);
//! * enums use serde's externally-tagged representation.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the meeting point of `Serialize` and
/// `Deserialize`, mirroring the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact; never coerced through `f64`).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys (field order is preserved so a
    /// struct serializes deterministically).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Views this value as an object field list.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Views this value as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A [`Value`] serializes as itself — callers holding arbitrary JSON
/// (e.g. a trace reader) can pass the tree straight through.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X, found Y while reading T".
    pub fn expected(what: &str, found: &Value, ty: &str) -> Self {
        DeError(format!(
            "expected {what}, found {} while reading {ty}",
            found.kind()
        ))
    }

    /// Free-form error.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a struct field by name in an object's field list.
pub fn get_field<'v>(fields: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the self-describing value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("unsigned integer", other, stringify!($t))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| DeError(format!("{n} out of range for usize")))
        })
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))?,
                    other => return Err(DeError::expected("integer", other, stringify!($t))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        i64::from_value(v).and_then(|n| {
            isize::try_from(n).map_err(|_| DeError(format!("{n} out of range for isize")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other, "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other, "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other, "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg("expected single-character string for char")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other, "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::from_value(v)
            .map(Vec::into_iter)
            .map(Iterator::collect)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::from_value(v)
            .map(Vec::into_iter)
            .map(Iterator::collect)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", v, "tuple"))?;
                if items.len() != LEN {
                    return Err(DeError(format!(
                        "expected tuple of length {LEN}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

impl<K: fmt::Display + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v, "BTreeMap"))?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}
