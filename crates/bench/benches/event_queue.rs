//! Micro-benchmarks of `presence_des::queue::EventQueue` in isolation:
//! pop and cancel costs, which bound every experiment's event throughput.
//!
//! The cancel benchmarks are the interesting ones — the old
//! `BinaryHeap + HashSet` design made cancel an O(1) tombstone insert but
//! paid for it at pop time (and leaked on fire-then-cancel); the indexed
//! heap pays a small bounded repair at cancel time and keeps pop clean.
//! The trade: the index bookkeeping costs ~1.7× on a synthetic 100k-element
//! push/pop storm, but wins on the protocols' actual (cancel-heavy, small-
//! queue) workloads — `scenario_throughput` runs ~10% faster than under the
//! tombstone design, with no leak.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use presence_des::{EventQueue, SimTime};
use std::hint::black_box;

const EVENTS: u64 = 100_000;

/// Deterministic xorshift time sequence (same stream in every sample).
fn scrambled_times() -> impl Iterator<Item = u64> {
    let mut t: u64 = 0x2545_f491_4f6c_dd1d;
    std::iter::repeat_with(move || {
        t ^= t << 13;
        t ^= t >> 7;
        t ^= t << 17;
        t % 1_000_000_000
    })
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(EVENTS));

    group.bench_function("push_pop_100k_scrambled", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(EVENTS as usize);
            for (seq, t) in scrambled_times().take(EVENTS as usize).enumerate() {
                q.push(SimTime::from_nanos(t), seq as u64, ());
            }
            let mut fired = 0u64;
            while let Some((key, ())) = q.pop() {
                fired += key.seq & 1;
            }
            black_box(fired)
        });
    });

    group.bench_function("cancel_100k_interior", |b| {
        // Fill the heap, then cancel every event by seq — each cancel hits
        // an arbitrary interior position via the seq → slot index.
        b.iter(|| {
            let mut q = EventQueue::with_capacity(EVENTS as usize);
            for (seq, t) in scrambled_times().take(EVENTS as usize).enumerate() {
                q.push(SimTime::from_nanos(t), seq as u64, ());
            }
            for seq in 0..EVENTS {
                black_box(q.cancel(seq));
            }
            debug_assert!(q.is_empty());
            black_box(q.len())
        });
    });

    group.bench_function("timeout_pattern_100k", |b| {
        // The protocols' dominant pattern: arm a probe timer and a timeout,
        // the reply cancels the timeout before it fires.
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut seq = 0u64;
            let mut fired = 0u64;
            for t in scrambled_times().take(EVENTS as usize) {
                q.push(SimTime::from_nanos(t), seq, ());
                q.push(SimTime::from_nanos(t + 1_000_000), seq + 1, ());
                seq += 2;
                if let Some((key, ())) = q.pop() {
                    fired += 1;
                    // Cancel this event's sibling timeout (a no-op for the
                    // odd/even half where the sibling already popped).
                    black_box(q.cancel(key.seq ^ 1));
                }
            }
            black_box(fired)
        });
    });

    group.bench_function("rearm_reschedule_100k", |b| {
        // The cancel-then-rearm timer pattern on the in-place fast path:
        // one reschedule replaces a cancel + push pair, reusing the
        // payload slot.
        b.iter(|| {
            let mut q = EventQueue::new();
            q.push(SimTime::from_nanos(0), 0, ());
            for (i, t) in scrambled_times().take(EVENTS as usize).enumerate() {
                let seq = i as u64;
                let moved = q.reschedule(seq, SimTime::from_nanos(t), seq + 1);
                debug_assert!(moved.is_some());
                black_box(&moved);
            }
            black_box(q.len())
        });
    });

    group.bench_function("rearm_cancel_push_100k", |b| {
        // The same workload on the slow path, for comparison.
        b.iter(|| {
            let mut q = EventQueue::new();
            q.push(SimTime::from_nanos(0), 0, ());
            for (i, t) in scrambled_times().take(EVENTS as usize).enumerate() {
                let seq = i as u64;
                let cancelled = q.cancel(seq);
                debug_assert!(cancelled.is_some());
                black_box(cancelled);
                q.push(SimTime::from_nanos(t), seq + 1, ());
            }
            black_box(q.len())
        });
    });

    group.bench_function("cancel_after_fire_noop_100k", |b| {
        // The leak regression's hot loop: cancelling fired seqs must be a
        // cheap pure no-op.
        b.iter(|| {
            let mut q = EventQueue::new();
            for seq in 0..EVENTS {
                q.push(SimTime::from_nanos(seq), seq, ());
                let popped = q.pop();
                debug_assert!(popped.is_some());
                black_box(q.cancel(seq));
            }
            black_box(q.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
