//! Micro-benchmarks of the binary wire codec: the per-datagram cost paid
//! on the paper's "small computing devices".

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use presence_core::{CpId, DeviceId, Probe, Reply, ReplyBody, WireMessage};
use presence_des::SimDuration;
use presence_runtime::codec::{decode, encode};
use std::hint::black_box;

fn messages() -> Vec<(&'static str, WireMessage)> {
    vec![
        (
            "probe",
            WireMessage::Probe(Probe {
                cp: CpId(7),
                seq: 123_456,
            }),
        ),
        (
            "reply_sapp",
            WireMessage::Reply(Reply {
                probe: Probe {
                    cp: CpId(7),
                    seq: 123_456,
                },
                device: DeviceId(0),
                body: ReplyBody::Sapp {
                    pc: 1_700_000,
                    last_probers: [Some(CpId(3)), Some(CpId(9))],
                },
            }),
        ),
        (
            "reply_dcpp",
            WireMessage::Reply(Reply {
                probe: Probe {
                    cp: CpId(7),
                    seq: 123_456,
                },
                device: DeviceId(0),
                body: ReplyBody::Dcpp {
                    wait: SimDuration::from_millis(500),
                },
            }),
        ),
    ]
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Elements(1));
    for (name, msg) in messages() {
        group.bench_function(format!("encode_{name}"), |b| {
            b.iter(|| black_box(encode(black_box(&msg))));
        });
        let bytes = encode(&msg);
        group.bench_function(format!("decode_{name}"), |b| {
            b.iter(|| black_box(decode(black_box(&bytes)).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
