//! Micro-benchmarks of the protocol state machines: the per-event cost a
//! mobile-phone-class device or CP pays. The paper argues DCPP is
//! "computationally simpler" than SAPP — these benches quantify that for
//! both roles.

use criterion::{criterion_group, criterion_main, Criterion};
use presence_core::{
    CpAction, CpId, DcppConfig, DcppCp, DcppDevice, DeviceId, Probe, Prober, SappConfig, SappCp,
    SappDevice, SappDeviceConfig,
};
use presence_des::SimTime;
use std::hint::black_box;

fn bench_devices(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_on_probe");

    group.bench_function("sapp", |b| {
        let mut dev = SappDevice::new(DeviceId(0), SappDeviceConfig::paper_default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000;
            let probe = Probe {
                cp: CpId((t % 20) as u32),
                seq: t,
            };
            black_box(dev.on_probe(SimTime::from_nanos(t), black_box(probe)))
        });
    });

    group.bench_function("dcpp", |b| {
        let mut dev = DcppDevice::new(DeviceId(0), DcppConfig::paper_default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000;
            let probe = Probe {
                cp: CpId((t % 20) as u32),
                seq: t,
            };
            black_box(dev.on_probe(SimTime::from_nanos(t), black_box(probe)))
        });
    });

    group.finish();
}

fn bench_cp_full_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("cp_full_cycle");

    // One complete probe cycle: wake-timer fire → probe → reply → sleep.
    group.bench_function("sapp", |b| {
        let mut cp = SappCp::new(CpId(1), SappConfig::paper_default());
        let mut dev = SappDevice::new(DeviceId(0), SappDeviceConfig::paper_default());
        let mut out: Vec<CpAction> = Vec::with_capacity(4);
        let mut now = SimTime::ZERO;
        cp.start(now, &mut out);
        b.iter(|| {
            // Find the probe we just sent and answer it.
            let probe = out
                .iter()
                .find_map(|a| match a {
                    CpAction::SendProbe(p) => Some(*p),
                    _ => None,
                })
                .expect("probe in flight");
            now += presence_des::SimDuration::from_millis(1);
            let reply = dev.on_probe(now, probe);
            out.clear();
            cp.on_reply(now, &reply, &mut out);
            // Fire the wake timer to start the next cycle.
            let wake = out
                .iter()
                .find_map(|a| match a {
                    CpAction::StartTimer { token, .. } => Some(*token),
                    _ => None,
                })
                .expect("wake timer");
            now += cp.delay();
            out.clear();
            cp.on_timer(now, wake, &mut out);
            black_box(&out);
        });
    });

    group.bench_function("dcpp", |b| {
        let mut cp = DcppCp::new(CpId(1), DcppConfig::paper_default());
        let mut dev = DcppDevice::new(DeviceId(0), DcppConfig::paper_default());
        let mut out: Vec<CpAction> = Vec::with_capacity(4);
        let mut now = SimTime::ZERO;
        cp.start(now, &mut out);
        b.iter(|| {
            let probe = out
                .iter()
                .find_map(|a| match a {
                    CpAction::SendProbe(p) => Some(*p),
                    _ => None,
                })
                .expect("probe in flight");
            now += presence_des::SimDuration::from_millis(1);
            let reply = dev.on_probe(now, probe);
            out.clear();
            cp.on_reply(now, &reply, &mut out);
            let wake = out
                .iter()
                .find_map(|a| match a {
                    CpAction::StartTimer { token, .. } => Some(*token),
                    _ => None,
                })
                .expect("wake timer");
            now += cp.current_delay().expect("assigned wait");
            out.clear();
            cp.on_timer(now, wake, &mut out);
            black_box(&out);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_devices, bench_cp_full_cycle);
criterion_main!(benches);
