//! Micro-benchmarks of the DES engine: raw event throughput and timer
//! cancellation cost — the substrate every experiment stands on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use presence_des::{Actor, Context, SimDuration, SimTime, Simulation};
use std::hint::black_box;

struct TimerChain {
    remaining: u64,
}

impl Actor<u32> for TimerChain {
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        ctx.set_timer(SimDuration::from_nanos(1), 0);
    }
    fn on_event(&mut self, ctx: &mut Context<'_, u32>, _: u32) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.set_timer(SimDuration::from_nanos(1), 0);
        }
    }
}

fn bench_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_engine");
    const EVENTS: u64 = 100_000;
    group.throughput(Throughput::Elements(EVENTS));
    group.bench_function("timer_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            sim.add_actor(TimerChain { remaining: EVENTS });
            sim.run_until_idle();
            black_box(sim.events_processed())
        });
    });

    group.bench_function("fanout_heap_100k", |b| {
        // Pre-scheduled events in random time order stress the heap.
        struct Sink;
        impl Actor<u32> for Sink {
            fn on_event(&mut self, _: &mut Context<'_, u32>, _: u32) {}
        }
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let id = sim.add_actor(Sink);
            let mut t: u64 = 0x2545f4914f6cdd1d;
            for i in 0..EVENTS {
                t ^= t << 13;
                t ^= t >> 7;
                t ^= t << 17;
                sim.schedule_at(SimTime::from_nanos(t % 1_000_000_000), id, i as u32);
            }
            sim.run_until_idle();
            black_box(sim.events_processed())
        });
    });

    group.bench_function("cancelled_timers_100k", |b| {
        struct Canceller {
            remaining: u64,
        }
        impl Actor<u32> for Canceller {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }
            fn on_event(&mut self, ctx: &mut Context<'_, u32>, _: u32) {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    // Arm two timers, cancel one — the protocols' dominant
                    // pattern (every reply cancels its timeout).
                    let h = ctx.set_timer(SimDuration::from_nanos(2), 1);
                    ctx.cancel(h);
                    ctx.set_timer(SimDuration::from_nanos(1), 0);
                }
            }
        }
        b.iter(|| {
            let mut sim = Simulation::new(1);
            sim.add_actor(Canceller { remaining: EVENTS });
            sim.run_until_idle();
            black_box(sim.events_processed())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_event_throughput);
criterion_main!(benches);
