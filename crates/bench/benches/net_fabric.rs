//! Micro-benchmarks of the network fabric: admission + delivery cost under
//! each delay/loss model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use presence_des::SimDuration;
use presence_des::{SimTime, StreamRng};
use presence_net::{
    BernoulliLoss, ConstantDelay, Fabric, GilbertElliott, NoLoss, SendOutcome, ThreeMode,
};
use std::hint::black_box;

fn run_fabric(mut fabric: Fabric, n: u64) -> u64 {
    let mut rng = StreamRng::new(7, 0);
    let mut admitted = 0;
    for i in 0..n {
        let now = SimTime::from_nanos(i * 1_000_000); // spacing > max delay: each send settles the previous deadline
        if let SendOutcome::Deliver(at) = fabric.send(now, &mut rng) {
            black_box(at);
            admitted += 1;
        }
    }
    fabric
        .stats_at(SimTime::from_nanos(n * 2_000_000))
        .delivered
        + admitted
}

fn bench_fabric(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_fabric");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));

    group.bench_function("three_mode_no_loss", |b| {
        b.iter(|| {
            let f = Fabric::new(
                20_000,
                Box::new(ThreeMode::paper_default()),
                Box::new(NoLoss),
            );
            black_box(run_fabric(f, N))
        });
    });

    group.bench_function("constant_bernoulli", |b| {
        b.iter(|| {
            let f = Fabric::new(
                20_000,
                Box::new(ConstantDelay(SimDuration::from_micros(300))),
                Box::new(BernoulliLoss::new(0.05)),
            );
            black_box(run_fabric(f, N))
        });
    });

    group.bench_function("three_mode_gilbert_elliott", |b| {
        b.iter(|| {
            let f = Fabric::new(
                20_000,
                Box::new(ThreeMode::paper_default()),
                Box::new(GilbertElliott::bursty(0.05)),
            );
            black_box(run_fabric(f, N))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_fabric);
criterion_main!(benches);
