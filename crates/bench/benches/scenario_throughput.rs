//! End-to-end simulation throughput: virtual seconds per wall second for
//! the paper's two headline scenarios. This is the "how long does
//! regenerating the evaluation take" number.

use criterion::{criterion_group, criterion_main, Criterion};
use presence_sim::{ChurnModel, Protocol, Scenario, ScenarioConfig};
use std::hint::black_box;

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario");
    group.sample_size(10);

    group.bench_function("sapp_20cps_100s", |b| {
        b.iter(|| {
            let cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 20, 100.0, 3);
            let mut s = Scenario::build(cfg);
            s.run();
            black_box(s.collect().device_probes)
        });
    });

    group.bench_function("dcpp_churn_100s", |b| {
        b.iter(|| {
            let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 60, 100.0, 3);
            cfg.initially_active = 20;
            cfg.churn = ChurnModel::paper_fig5();
            let mut s = Scenario::build(cfg);
            s.run();
            black_box(s.collect().device_probes)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
