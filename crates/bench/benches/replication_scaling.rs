//! Wall-clock scaling of the parallel replication engine: the same 20-seed
//! DCPP study at increasing worker counts. On an N-core machine the
//! speedup should approach min(N, 20)× — the replications are independent
//! simulations with a cheap seed-ordered merge at the end.
//!
//! (On a single-core machine all worker counts collapse to roughly the
//! serial time; the bench still pins the pool's overhead.)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use presence_sim::{replicate_with_jobs, Protocol, ScenarioConfig};
use std::hint::black_box;

const SEEDS: u64 = 20;

fn bench_replication_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SEEDS));

    let base = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 10, 120.0, 0);
    let seeds: Vec<u64> = (1..=SEEDS).collect();

    let max_jobs = std::thread::available_parallelism().map_or(4, usize::from);
    let mut job_counts = vec![1usize, 2, 4, 8];
    job_counts.retain(|&j| j == 1 || j <= 2 * max_jobs);

    for jobs in job_counts {
        group.bench_function(format!("dcpp_20_seeds_jobs_{jobs}"), |b| {
            b.iter(|| {
                let summary = replicate_with_jobs(&base, &seeds, 0.95, jobs);
                black_box(summary.points.len())
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_replication_scaling);
criterion_main!(benches);
