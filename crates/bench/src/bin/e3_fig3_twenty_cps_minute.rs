//! E3 — Figure 3: 7 of 20 SAPP CPs over the minute starting at t = 12 300 s.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::e3_fig3_twenty_cps_minute;

fn main() {
    let opts = parse_args();
    // `--duration` here sets the window START (paper: 12 300 s).
    let window_start = opts.duration.unwrap_or(12_300.0);
    let report = e3_fig3_twenty_cps_minute(window_start, opts.seed);
    if opts.csv {
        print!("{}", report.to_csv());
        return;
    }
    emit(&report, &opts);
    if !opts.json {
        print!("{}", report.to_ascii());
    }
}
