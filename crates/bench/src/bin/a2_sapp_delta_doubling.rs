//! A2 — §2 device-side Δ-doubling load control.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::a2_delta_doubling;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(10_000.0);
    let report = a2_delta_doubling(20, duration, opts.seed);
    emit(&report, &opts);
}
