//! E6 — §5 static-case claim: DCPP load cap and fairness across k.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::e6_dcpp_static_fairness;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(2_000.0);
    let report = e6_dcpp_static_fairness(&[1, 2, 5, 10, 20, 40, 60], duration, opts.seed);
    emit(&report, &opts);
}
