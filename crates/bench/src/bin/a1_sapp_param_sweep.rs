//! A1 — SAPP adaptation-constant sensitivity sweep.
//!
//! The 27-cell grid fans out across `--jobs N` worker threads (default
//! `PRESENCE_JOBS` / machine parallelism); the report is identical at any
//! worker count.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::a1_sapp_param_sweep_jobs;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(2_000.0);
    let report = a1_sapp_param_sweep_jobs(20, duration, opts.seed, opts.resolved_jobs());
    emit(&report, &opts);
}
