//! A1 — SAPP adaptation-constant sensitivity sweep.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::a1_sapp_param_sweep;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(2_000.0);
    let report = a1_sapp_param_sweep(20, duration, opts.seed);
    emit(&report, &opts);
}
