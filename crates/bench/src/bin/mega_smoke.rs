//! Bounded-memory smoke test for the mega-scale path: runs the `mega-ci`
//! catalog scenario (10⁵ devices on the calendar queue with streaming
//! recorders) and fails if the process high-water RSS exceeds the budget —
//! the guard that the struct-of-arrays shard and streaming recorders
//! actually hold memory flat, not just that they finish.
//!
//! ```text
//! mega_smoke                 # run mega-ci, assert VmHWM < 512 MiB
//! mega_smoke --budget-mb N   # override the budget
//! ```
//!
//! The RSS probe reads `/proc/self/status` (Linux). Where that is absent
//! the run still validates the protocol invariants and reports throughput,
//! skipping only the memory assertion.

use presence_sim::{mega_catalog, run_mega_spec};
use std::process::ExitCode;
use std::time::Instant;

const DEFAULT_BUDGET_MB: u64 = 512;

/// Peak resident set size in KiB from `/proc/self/status`, if available.
fn vm_hwm_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budget_mb = DEFAULT_BUDGET_MB;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget-mb" => {
                budget_mb = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--budget-mb N");
            }
            other => {
                eprintln!("mega_smoke: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let spec = mega_catalog()
        .into_iter()
        .find(|s| s.name == "mega-ci")
        .expect("mega-ci catalog entry");
    println!(
        "mega-ci: {} devices / {} CPs, {} s virtual, budget {budget_mb} MiB…",
        spec.config.devices, spec.config.cps, spec.config.duration
    );
    let start = Instant::now();
    let result = run_mega_spec(&spec);
    let wall = start.elapsed().as_secs_f64();
    println!(
        "mega-ci: {} events in {wall:.2} s ({:.0} events/s), {} cycles, \
         wait mean {:.3} s, {:.2} probes/s/device",
        result.events_processed,
        result.events_processed as f64 / wall,
        result.cycles_succeeded,
        result.wait_mean,
        result.load_mean_per_device,
    );

    let mut failures = Vec::new();
    if result.cycles_succeeded == 0 {
        failures.push("no probe cycle completed".to_string());
    }
    if result.cycles_failed != 0 || result.stopped_pairs != 0 {
        failures.push(format!(
            "lossless run failed cycles: {} failed, {} stopped pairs",
            result.cycles_failed, result.stopped_pairs
        ));
    }
    // One watcher per device: the d_min = 0.5 s frequency floor binds.
    if (result.wait_mean - 0.5).abs() > 0.05 {
        failures.push(format!(
            "wait mean {:.4} s strayed from the d_min floor",
            result.wait_mean
        ));
    }
    match vm_hwm_kib() {
        Some(kib) => {
            println!("peak RSS {:.1} MiB", kib as f64 / 1024.0);
            if kib > budget_mb * 1024 {
                failures.push(format!(
                    "peak RSS {:.1} MiB exceeds the {budget_mb} MiB budget",
                    kib as f64 / 1024.0
                ));
            }
        }
        None => println!("(no /proc/self/status here; skipping the RSS budget assertion)"),
    }

    if failures.is_empty() {
        println!("ok  mega smoke");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("mega_smoke: {f}");
        }
        ExitCode::FAILURE
    }
}
