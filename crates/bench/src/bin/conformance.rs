//! Sim/runtime conformance inspector and loopback stress driver.
//!
//! * `conformance` — run the standard conformance scenarios (the same
//!   catalogue `tests/conformance.rs` pins) through both the DES oracle
//!   and the sharded UDP runtime at `RUNTIME_SHARDS`, print the
//!   agreement table, and exit non-zero on any divergence.
//! * `conformance --stress [N]` — serve `N` (default 10 000) DCPP
//!   devices and `N` probers over loopback UDP on the wall clock for a
//!   few seconds and require **zero** backpressure drops, zero decode
//!   errors, zero unroutable datagrams, and zero false absence verdicts
//!   from the new `ShardCounters` surface. This is the serving-runtime
//!   acceptance gate: the sharded host must sustain a five-digit device
//!   population on a CI container without shedding load.
//!
//! `RUNTIME_SHARDS` controls the shard count of every host either way.

use presence_core::{CpId, DcppConfig, DcppCp, DcppDevice, DeviceId};
use presence_des::{SimDuration, SimTime};
use presence_runtime::conformance::{
    dcpp_fleet, dcpp_pair, mixed_fleet, run_oracle, run_udp, sapp_pair, ConformanceScenario,
};
use presence_runtime::{
    shards_from_env, Clock, DeviceHost, HostConfig, HostHandle, ShardedHost, SystemClock,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn run_catalogue(shards: usize) -> bool {
    let scenarios: Vec<ConformanceScenario> =
        vec![dcpp_pair(), dcpp_fleet(6), sapp_pair(), mixed_fleet()];
    let mut all_ok = true;
    println!("scenario        shards  cps  devices  verdicts  probes   agreement");
    for scenario in &scenarios {
        let oracle = run_oracle(scenario);
        let udp = match run_udp(scenario, shards) {
            Ok(r) => r,
            Err(e) => {
                println!("{:<15} {shards:>6}  UDP run failed: {e}", scenario.name);
                all_ok = false;
                continue;
            }
        };
        let verdicts = oracle.cps.iter().filter(|c| c.verdict.is_some()).count();
        let probes: u64 = oracle.cps.iter().map(|c| c.stats.probes_sent).sum();
        let ok = oracle == udp;
        all_ok &= ok;
        println!(
            "{:<15} {shards:>6} {:>4} {:>8} {:>9} {:>7}   {}",
            scenario.name,
            scenario.cps.len(),
            scenario.devices.len(),
            verdicts,
            probes,
            if ok { "EXACT" } else { "DIVERGED" }
        );
        if !ok {
            for (o, u) in oracle.cps.iter().zip(&udp.cps) {
                if o != u {
                    println!("  cp {:?}: oracle {o:?}\n           udp    {u:?}", o.cp);
                }
            }
            for (o, u) in oracle.devices.iter().zip(&udp.devices) {
                if o != u {
                    println!("  device {:?}: oracle {o:?} udp {u:?}", o.device);
                }
            }
        }
    }
    all_ok
}

/// Waits until the host's activity counter stops moving (in-flight
/// datagrams drained), bounded by `limit`.
fn settle(host: &HostHandle, limit: Duration) {
    let deadline = Instant::now() + limit;
    let mut last = host.activity();
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
        let now = host.activity();
        if now == last {
            return;
        }
        last = now;
    }
}

fn run_stress(devices_n: u32, shards: usize) -> bool {
    let cfg = DcppConfig::paper_default(); // d_min = 500 ms: ~2 probes/s/CP
    let host_cfg = HostConfig {
        shards,
        bind: "127.0.0.1:0".to_string(),
        recv_batch: 64,
        poll_interval: Duration::from_millis(1),
    };
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());

    let mut devices = ShardedHost::bind(&host_cfg).expect("bind device host");
    for d in 0..devices_n {
        devices.add_device(DeviceHost::Dcpp(DcppDevice::new(DeviceId(d), cfg)), None);
    }
    let mut cps = ShardedHost::bind(&host_cfg).expect("bind cp host");
    // Stagger starts across one full probe period so the steady state is
    // phase-spread: a thundering herd of 10k simultaneous probes would
    // measure the kernel's socket buffer, not the host.
    let stagger = cfg.d_min.as_nanos() / u64::from(devices_n.max(1));
    for d in 0..devices_n {
        cps.add_prober(
            Box::new(DcppCp::new(CpId(d), cfg)),
            devices.addr_of(DeviceId(d)),
            DeviceId(d),
            SimTime::ZERO + SimDuration::from_nanos(u64::from(d) * stagger),
        );
    }

    println!(
        "stress: {devices_n} DCPP devices / {devices_n} CPs, {shards} shard(s) per host, \
         d_min {:.3} s",
        cfg.d_min.as_secs_f64()
    );
    let start = Instant::now();
    let device_handle = devices.start(Arc::clone(&clock));
    let cp_handle = cps.start(Arc::clone(&clock));

    // Run long enough for several full probe cycles per CP.
    std::thread::sleep(Duration::from_secs(4));
    let cp_report = cp_handle.join();
    settle(&device_handle, Duration::from_secs(2));
    let device_report = device_handle.join();
    let wall = start.elapsed().as_secs_f64();

    let sent: u64 = cp_report.probers.iter().map(|p| p.stats.probes_sent).sum();
    let answered: u64 = device_report
        .devices
        .iter()
        .map(|d| d.probes_received)
        .sum();
    let datagrams = cp_report.stats.datagrams_sent + device_report.stats.datagrams_sent;
    let false_verdicts = cp_report
        .probers
        .iter()
        .filter(|p| p.verdict.is_some())
        .count();
    let drops = cp_report.stats.dropped() + device_report.stats.dropped();
    let decode_errors = cp_report.stats.decode_errors + device_report.stats.decode_errors;
    let unroutable = cp_report.stats.unroutable + device_report.stats.unroutable;

    println!(
        "stress: {sent} probes sent, {answered} answered, {datagrams} datagrams \
         in {wall:.1} s ({:.0} datagrams/s)",
        datagrams as f64 / wall
    );
    println!(
        "stress: backpressure drops {drops}, decode errors {decode_errors}, \
         unroutable {unroutable}, false verdicts {false_verdicts}"
    );
    for (i, s) in cp_report.per_shard.iter().enumerate() {
        println!(
            "  cp shard {i}: sent {} received {} timers {}",
            s.datagrams_sent, s.datagrams_received, s.timers_fired
        );
    }

    let mut ok = true;
    if drops != 0 || decode_errors != 0 || unroutable != 0 {
        println!("FAIL: host shed load (the backpressure counters must read zero)");
        ok = false;
    }
    if false_verdicts != 0 {
        println!("FAIL: {false_verdicts} false absence verdicts under load");
        ok = false;
    }
    let min_cycles = u64::from(devices_n) * 4; // ≥ 4 full cycles per CP in 4 s
    let cycles: u64 = cp_report
        .probers
        .iter()
        .map(|p| p.stats.cycles_succeeded)
        .sum();
    if cycles < min_cycles {
        println!("FAIL: only {cycles} cycles completed (need ≥ {min_cycles})");
        ok = false;
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shards = shards_from_env();
    let mut stress: Option<u32> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--stress" => {
                stress = Some(
                    iter.next()
                        .map(|v| v.parse().expect("--stress takes a device count"))
                        .unwrap_or(10_000),
                );
            }
            other => panic!("unknown flag {other} (conformance [--stress [N]])"),
        }
    }

    let ok = match stress {
        Some(n) => run_stress(n, shards),
        None => run_catalogue(shards),
    };
    if !ok {
        std::process::exit(1);
    }
}
