//! E2 — Figure 2: probe frequencies of 3 SAPP CPs over 20 000 s.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::e2_fig2_three_cps;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(20_000.0);
    let report = e2_fig2_three_cps(duration, opts.seed);
    if opts.csv {
        print!("{}", report.to_csv());
        return;
    }
    emit(&report, &opts);
    if !opts.json {
        print!("{}", report.to_ascii());
    }
}
