//! Runs every experiment at reduced scale and prints all reports — a quick
//! end-to-end regeneration of the paper's evaluation section.

use presence_bench::parse_args;
use presence_sim::experiments::*;

fn main() {
    let opts = parse_args();
    let seed = opts.seed;
    let scale = opts.duration.unwrap_or(1.0);

    println!("{}\n", e1_sapp_steady_state(5_000.0 * scale, seed));
    println!("{}\n", e2_fig2_three_cps(5_000.0 * scale, seed));
    println!("{}\n", e3_fig3_twenty_cps_minute(1_200.0 * scale, seed));
    println!(
        "{}\n",
        e4_fig4_burst_leave(5_000.0 * scale, 500.0 * scale, seed)
    );
    println!("{}\n", e5_fig5_dcpp_churn(1_800.0 * scale, seed));
    println!(
        "{}\n",
        e6_dcpp_static_fairness(&[1, 2, 5, 10, 20, 40, 60], 500.0 * scale, seed)
    );
    println!("{}\n", e7_dcpp_loss_spread(1_000.0 * scale, seed));
    println!("{}\n", a1_sapp_param_sweep(20, 500.0 * scale, seed));
    println!("{}\n", a2_delta_doubling(20, 8_000.0 * scale, seed));
    println!(
        "{}\n",
        a3_fixed_rate_baseline(&[1, 2, 5, 10, 20, 40, 60], 500.0 * scale, seed)
    );
    println!("{}\n", a4_detection_latency(20, 300.0 * scale, seed));
    println!("{}\n", a5_auto_tune_surge(1_500.0 * scale, seed));
    println!("{}\n", a6_dissemination(20, 1_000.0 * scale, seed));
    println!("{}\n", a7_initial_delay(20, 2_000.0 * scale, seed));
    println!("{}\n", a8_false_positives(20, 2_000.0 * scale, seed));
}
