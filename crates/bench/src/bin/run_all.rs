//! Runs every experiment at reduced scale and prints all reports — a quick
//! end-to-end regeneration of the paper's evaluation section.
//!
//! The experiments are mutually independent simulations, so they run
//! through the `--jobs N` worker pool (default `PRESENCE_JOBS` / machine
//! parallelism). Reports are rendered off-thread, streamed back, and
//! printed in the fixed E1…E7, A1…A8 order as soon as each in-order
//! prefix completes — so the output is byte-identical at any worker
//! count, and with `--jobs 1` each report still appears the moment its
//! experiment finishes.

use presence_bench::parse_args;
use presence_sim::experiments::*;
use presence_sim::for_each_indexed;

fn main() {
    let opts = parse_args();
    let seed = opts.seed;
    let scale = opts.duration.unwrap_or(1.0);
    let jobs = opts.resolved_jobs();

    // One closure per experiment, in print order. Each renders its report
    // to a string inside the pool; A1 keeps its whole 27-cell grid on the
    // worker that runs it (the outer pool already saturates the machine).
    type Job<'a> = Box<dyn Fn() -> String + Sync + 'a>;
    let experiments: Vec<Job> = vec![
        Box::new(move || e1_sapp_steady_state(5_000.0 * scale, seed).to_string()),
        Box::new(move || e2_fig2_three_cps(5_000.0 * scale, seed).to_string()),
        Box::new(move || e3_fig3_twenty_cps_minute(1_200.0 * scale, seed).to_string()),
        Box::new(move || e4_fig4_burst_leave(5_000.0 * scale, 500.0 * scale, seed).to_string()),
        Box::new(move || e5_fig5_dcpp_churn(1_800.0 * scale, seed).to_string()),
        Box::new(move || {
            e6_dcpp_static_fairness(&[1, 2, 5, 10, 20, 40, 60], 500.0 * scale, seed).to_string()
        }),
        Box::new(move || e7_dcpp_loss_spread(1_000.0 * scale, seed).to_string()),
        Box::new(move || a1_sapp_param_sweep_jobs(20, 500.0 * scale, seed, 1).to_string()),
        Box::new(move || a2_delta_doubling(20, 8_000.0 * scale, seed).to_string()),
        Box::new(move || {
            a3_fixed_rate_baseline(&[1, 2, 5, 10, 20, 40, 60], 500.0 * scale, seed).to_string()
        }),
        Box::new(move || a4_detection_latency(20, 300.0 * scale, seed).to_string()),
        Box::new(move || a5_auto_tune_surge(1_500.0 * scale, seed).to_string()),
        Box::new(move || a6_dissemination(20, 1_000.0 * scale, seed).to_string()),
        Box::new(move || a7_initial_delay(20, 2_000.0 * scale, seed).to_string()),
        Box::new(move || a8_false_positives(20, 2_000.0 * scale, seed).to_string()),
    ];

    for_each_indexed(
        experiments.len(),
        jobs,
        |i| experiments[i](),
        |_, report| println!("{report}\n"),
    );
}
