//! The trace inspector: read a Chrome JSON trace exported by
//! `lab --trace` back in, check its structural invariants, and print the
//! terminal digest — busiest actors, the regime-switch timeline,
//! per-phase fairness, and probe-cycle latency percentiles.
//!
//! ```text
//! spotter out.json            # validate + full digest (top 10 actors)
//! spotter out.json --top 5    # keep the 5 busiest actors
//! ```
//!
//! Exit status: 0 when the trace parses and validates, 1 otherwise — the
//! CI trace stage relies on this.

use presence_trace::{analyze, parse, validate};
use std::process::ExitCode;

fn us_to_s(us: f64) -> f64 {
    us / 1e6
}

fn run(path: &str, top_n: usize) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let check = validate(&trace).map_err(|e| format!("{path}: invalid trace: {e}"))?;
    println!(
        "{path}: {} events · {} tracks · {} slices · {} instants · {} counter tracks",
        check.events, check.tracks, check.slices, check.instants, check.counter_tracks
    );

    let report = analyze(&trace, top_n);

    println!("\nbusiest actors (slices + instants):");
    if report.busiest.is_empty() {
        println!("  (none)");
    }
    for (name, activity) in &report.busiest {
        println!("  {name:<16} {activity:>8}");
    }

    println!("\nregime switches:");
    if report.regime_switches.is_empty() {
        println!("  (none — single-regime run)");
    }
    for (ts, ordinal) in &report.regime_switches {
        println!("  #{ordinal:<3} at {:>10.3} s", us_to_s(*ts));
    }

    println!("\nper-phase fairness (Jain over per-CP probe frequency):");
    for phase in &report.phases {
        let jain = phase
            .jain
            .map_or_else(|| "    —".to_string(), |j| format!("{j:.3}"));
        println!(
            "  {:>10.3} s .. {:>10.3} s   {jain}",
            us_to_s(phase.begin_us),
            us_to_s(phase.end_us)
        );
    }

    println!(
        "\nprobe cycles: {} started, {} completed",
        report.cycles_started, report.cycles_completed
    );
    match report.cycle_latency {
        Some(p) => println!(
            "cycle latency: p50 {:.1} µs · p90 {:.1} µs · p99 {:.1} µs",
            p.p50, p.p90, p.p99
        ),
        None => println!("cycle latency: no completed cycles in the trace"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut top_n = 10usize;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                top_n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--top N (a positive integer)");
                assert!(top_n > 0, "--top must be positive");
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => path = Some(other.to_string()),
        }
    }
    let Some(path) = path else {
        eprintln!("usage: spotter <trace.json> [--top N]");
        return ExitCode::FAILURE;
    };
    match run(&path, top_n) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("spotter: {e}");
            ExitCode::FAILURE
        }
    }
}
