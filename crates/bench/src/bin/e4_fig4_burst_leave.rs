//! E4 — Figure 4: 18 of 20 SAPP CPs leave simultaneously.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::e4_fig4_burst_leave;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(20_000.0);
    let report = e4_fig4_burst_leave(duration, duration / 10.0, opts.seed);
    if opts.csv {
        print!("{}", report.to_csv());
        return;
    }
    emit(&report, &opts);
    if !opts.json {
        print!("{}", report.to_ascii());
    }
}
