//! E5 — Figure 5: DCPP device load and population under U{1..60} churn.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::e5_fig5_dcpp_churn;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(3_000.0);
    let report = e5_fig5_dcpp_churn(duration, opts.seed);
    emit(&report, &opts);
    if !opts.json {
        print!("{}", report.to_ascii());
    }
}
