//! A4 — absence-detection latency across protocols and baselines.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::a4_detection_latency;

fn main() {
    let opts = parse_args();
    let crash_at = opts.duration.unwrap_or(300.0);
    let report = a4_detection_latency(20, crash_at, opts.seed);
    emit(&report, &opts);
}
