//! Serial hot-path performance report for the engine fast paths
//! (single-hop delivery, typed actor dispatch, inline timer slots,
//! calendar event queue): events/sec, events-per-delivered-message, and
//! wall time for the standard SAPP/DCPP/churn trio (`golden_trio`, the
//! same configurations the golden-equivalence suite pins) at CI horizons.
//!
//! * `perf_report [out.json]` — run the trio, print the table, write the
//!   report (default `BENCH_PR7.json`).
//! * `perf_report --regions N` — run with `PRESENCE_REGIONS=N`; each
//!   scenario prints its region plan (the trio is hub-coupled, so the
//!   planner provably collapses any multi-region request to one
//!   effective region — the plan's reason is surfaced in the table and
//!   recorded in the report).
//! * `perf_report --mega` — additionally run the `mega-1m` catalog
//!   scenario (10⁶ devices / 10⁴ CPs on the calendar queue with streaming
//!   recorders) once and record its throughput in the report.
//! * `perf_report --check` — additionally exit non-zero if any scenario
//!   breaks a structural gate: events-per-delivered-message above 2.05,
//!   `events_processed` differing from the golden fixture recorded in
//!   `tests/golden/` (dispatch refactors must not change event counts),
//!   a trio scenario whose regions=2 result is not byte-identical to its
//!   regions=1 result (the conservative-window engine must never perturb
//!   a trajectory), or trio throughput collapsing below half of the
//!   committed `BENCH_PR6.json` snapshot (the one wall-clock gate;
//!   halved to absorb CI box noise while still catching
//!   order-of-magnitude regressions).

use presence_sim::{golden_trio, mega_catalog, region_count, run_mega_spec, MegaResult, Scenario};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Events-per-delivered-message ceiling: 2 exact for the single-hop path,
/// plus 2.5 % headroom for dropped and still-in-flight messages.
const EPM_GATE: f64 = 2.05;

/// Repeat each scenario until the accumulated wall time passes this, so
/// the events/sec figure is not a single-run noise sample.
const MIN_WALL_SECS: f64 = 0.25;

/// `--check` fails if a trio scenario's events/sec drops below this
/// fraction of its `BENCH_PR6.json` snapshot.
const THROUGHPUT_GATE_FRACTION: f64 = 0.5;

/// The committed throughput snapshot the `--check` floor reads.
const BASELINE_FILE: &str = "BENCH_PR6.json";

#[derive(Debug, Serialize)]
struct ScenarioReport {
    name: String,
    virtual_seconds: f64,
    runs: u64,
    wall_seconds_per_run: f64,
    events_per_run: u64,
    events_per_sec: f64,
    delivered_messages: u64,
    events_per_delivered_message: f64,
    /// The region plan the run executed under: requested regions,
    /// effective regions, and the planner's reason.
    region_plan: String,
}

#[derive(Debug, Serialize)]
struct MegaReport {
    name: String,
    wall_seconds: f64,
    events_per_sec: f64,
    result: MegaResult,
}

#[derive(Debug, Serialize)]
struct Report {
    epm_gate: f64,
    /// `PRESENCE_REGIONS` the report ran under (1 unless `--regions`).
    regions: usize,
    scenarios: Vec<ScenarioReport>,
    mega: Option<MegaReport>,
}

/// The one golden-fixture field the `--check` gate needs (the shim's
/// derive skips the unknown keys of the full `ScenarioResult` dump).
#[derive(Debug, Deserialize)]
struct GoldenEvents {
    events_processed: u64,
}

/// The baseline fields the throughput gate reads from [`BASELINE_FILE`].
#[derive(Debug, Deserialize)]
struct BaselineScenario {
    name: String,
    events_per_sec: f64,
}

#[derive(Debug, Deserialize)]
struct BaselineReport {
    scenarios: Vec<BaselineScenario>,
}

/// `events_processed` from `tests/golden/<name>.json`. `Ok(None)` means
/// the fixture file is absent (e.g. the bin runs outside the workspace
/// root) — the count gate is skipped with a notice while the EPM gate
/// still applies. A fixture that exists but fails to parse is an `Err`:
/// under `--check` that is a gate failure, never a silent skip.
fn golden_events(name: &str) -> Result<Option<u64>, String> {
    let text = match std::fs::read_to_string(format!("tests/golden/{name}.json")) {
        Ok(text) => text,
        Err(_) => return Ok(None),
    };
    let golden: GoldenEvents = serde_json::from_str(&text)
        .map_err(|e| format!("golden fixture tests/golden/{name}.json unparseable: {e:?}"))?;
    Ok(Some(golden.events_processed))
}

/// The committed [`BASELINE_FILE`] throughput snapshot; same absence
/// semantics as [`golden_events`].
fn baseline_events_per_sec(name: &str) -> Result<Option<f64>, String> {
    let text = match std::fs::read_to_string(BASELINE_FILE) {
        Ok(text) => text,
        Err(_) => return Ok(None),
    };
    let baseline: BaselineReport = serde_json::from_str(&text)
        .map_err(|e| format!("baseline {BASELINE_FILE} unparseable: {e:?}"))?;
    Ok(baseline
        .scenarios
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.events_per_sec))
}

/// Runs one trio scenario under the given `PRESENCE_REGIONS` setting and
/// returns the serialised `ScenarioResult` — the byte string the
/// region-equivalence gate compares. The caller restores the variable.
fn result_bytes_at_regions(cfg: presence_sim::ScenarioConfig, regions: &str) -> String {
    std::env::set_var("PRESENCE_REGIONS", regions);
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    serde_json::to_string(&scenario.collect()).expect("result serialises")
}

/// The `--check` region-equivalence gate: every trio scenario must
/// produce byte-identical results at `PRESENCE_REGIONS=1` and `=2`. The
/// trio collapses to one effective region either way, so this pins the
/// *plan consultation itself* as trajectory-neutral.
fn check_region_equivalence(gate_failures: &mut Vec<String>) {
    let previous = std::env::var("PRESENCE_REGIONS").ok();
    for (name, cfg) in golden_trio() {
        let one = result_bytes_at_regions(cfg, "1");
        let two = result_bytes_at_regions(cfg, "2");
        if one == two {
            println!("  {name}: regions=2 byte-identical to regions=1");
        } else {
            gate_failures.push(format!("{name}: regions=2 result diverges from regions=1"));
        }
    }
    match previous {
        Some(v) => std::env::set_var("PRESENCE_REGIONS", v),
        None => std::env::remove_var("PRESENCE_REGIONS"),
    }
}

fn run_mega() -> MegaReport {
    let spec = mega_catalog()
        .into_iter()
        .find(|s| s.name == "mega-1m")
        .expect("mega-1m catalog entry");
    println!(
        "mega-1m: {} devices / {} CPs on the calendar queue…",
        spec.config.devices, spec.config.cps
    );
    let start = Instant::now();
    let result = run_mega_spec(&spec);
    let wall = start.elapsed().as_secs_f64();
    let report = MegaReport {
        name: spec.name,
        wall_seconds: wall,
        events_per_sec: result.events_processed as f64 / wall,
        result,
    };
    println!(
        "mega-1m: {:>9} events in {:>7.2} s ({:>9.0} events/s), \
         {} cycles, wait mean {:.3} s, {:.2} probes/s/device",
        report.result.events_processed,
        wall,
        report.events_per_sec,
        report.result.cycles_succeeded,
        report.result.wait_mean,
        report.result.load_mean_per_device,
    );
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut mega = false;
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--mega" => mega = true,
            "--regions" => {
                let n = it.next().expect("--regions needs a value");
                n.parse::<usize>()
                    .expect("--regions N (a positive integer)");
                std::env::set_var("PRESENCE_REGIONS", n);
            }
            other if other.starts_with("--") => {
                panic!("unknown flag {other} (perf_report [--check] [--mega] [--regions N] [out.json])")
            }
            other => out_path = Some(other.to_string()),
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_PR7.json".to_string());
    let regions = region_count();

    let mut scenarios = Vec::new();
    let mut gate_failures = Vec::new();
    for (name, cfg) in golden_trio() {
        // Surface the region plan once, outside the timed region: the
        // trio is hub-coupled, so any multi-region request collapses.
        let plan = Scenario::build(cfg).region_plan();
        let plan_line = format!(
            "requested {} -> effective {} ({})",
            plan.requested, plan.effective, plan.reason
        );
        if regions > 1 {
            println!("{name:>6}: regions {plan_line}");
        }
        let mut runs = 0u64;
        let mut last = None;
        // Each repeat is timed individually and the throughput figure
        // comes from the *fastest* one: scheduler contention on a shared
        // CI box only ever slows a run down, so the minimum wall time is
        // the low-variance estimator of what the code can actually do —
        // means drift with box load and trip the gate spuriously.
        let mut best_wall = f64::INFINITY;
        let start = Instant::now();
        while runs == 0 || start.elapsed().as_secs_f64() < MIN_WALL_SECS {
            let run_start = Instant::now();
            let mut scenario = Scenario::build(cfg);
            scenario.run();
            best_wall = best_wall.min(run_start.elapsed().as_secs_f64());
            last = Some(scenario);
            runs += 1;
        }
        // Collection (which clones every recorded series) happens once,
        // outside the timed region: the wall figure is build + run only.
        let mut scenario = last.expect("at least one run");
        let result = scenario.collect();
        let epm = result
            .events_per_delivered_message()
            .expect("trio delivers messages");
        let report = ScenarioReport {
            name: name.to_string(),
            virtual_seconds: result.duration,
            runs,
            wall_seconds_per_run: best_wall,
            events_per_run: result.events_processed,
            events_per_sec: result.events_processed as f64 / best_wall,
            delivered_messages: result.messages_delivered,
            events_per_delivered_message: epm,
            region_plan: plan_line,
        };
        println!(
            "{:>6}: {:>8} events in {:>8.4} s/run best-of-{runs} \
             ({:>9.0} events/s), events/delivered-msg {:.4}",
            name, report.events_per_run, best_wall, report.events_per_sec, epm
        );
        if epm > EPM_GATE {
            gate_failures.push(format!("{name}: {epm:.4} > {EPM_GATE}"));
        }
        if check {
            // Structural dispatch gate: the refactored engine must process
            // exactly the event count the pre-refactor fixture recorded.
            match golden_events(name) {
                Ok(Some(golden)) if golden != result.events_processed => {
                    gate_failures.push(format!(
                        "{name}: events_processed {} != golden fixture {golden}",
                        result.events_processed
                    ));
                }
                Ok(Some(_)) => {}
                Ok(None) => println!(
                    "  (no golden fixture for {name} here; skipping the \
                     events_processed gate)"
                ),
                Err(e) => gate_failures.push(e),
            }
            // Throughput floor against the committed PR6 snapshot.
            match baseline_events_per_sec(name) {
                Ok(Some(baseline)) => {
                    let floor = baseline * THROUGHPUT_GATE_FRACTION;
                    if report.events_per_sec < floor {
                        gate_failures.push(format!(
                            "{name}: {:.0} events/s below {:.0} \
                             ({THROUGHPUT_GATE_FRACTION} x {BASELINE_FILE} snapshot {baseline:.0})",
                            report.events_per_sec, floor
                        ));
                    }
                }
                Ok(None) => {
                    println!("  (no {BASELINE_FILE} here; skipping the throughput gate for {name})")
                }
                Err(e) => gate_failures.push(e),
            }
        }
        scenarios.push(report);
    }

    if check {
        println!("region-equivalence gate (regions=2 vs regions=1):");
        check_region_equivalence(&mut gate_failures);
    }

    let mega_report = if mega { Some(run_mega()) } else { None };

    let report = Report {
        epm_gate: EPM_GATE,
        regions,
        scenarios,
        mega: mega_report,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("write report");
    println!("report -> {out_path}");

    if check && !gate_failures.is_empty() {
        eprintln!("perf structural gates failed:");
        for f in &gate_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
