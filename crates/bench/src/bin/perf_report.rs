//! Serial hot-path performance report for the engine fast paths
//! (single-hop delivery, typed actor dispatch, inline timer slots):
//! events/sec, events-per-delivered-message, and wall time for the
//! standard SAPP/DCPP/churn trio (`golden_trio`, the same configurations
//! the golden-equivalence suite pins) at CI horizons.
//!
//! * `perf_report [out.json]` — run the trio, print the table, write the
//!   report (default `BENCH_PR5.json`).
//! * `perf_report --check` — additionally exit non-zero if any scenario
//!   breaks a structural gate: events-per-delivered-message above 2.05,
//!   or `events_processed` differing from the golden fixture recorded in
//!   `tests/golden/` (dispatch refactors must not change event counts).
//!   Both gates count engine events, not nanoseconds, so they hold even
//!   on a noisy 1-core CI box.

use presence_sim::{golden_trio, Scenario};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Events-per-delivered-message ceiling: 2 exact for the single-hop path,
/// plus 2.5 % headroom for dropped and still-in-flight messages.
const EPM_GATE: f64 = 2.05;

/// Repeat each scenario until the accumulated wall time passes this, so
/// the events/sec figure is not a single-run noise sample.
const MIN_WALL_SECS: f64 = 0.25;

#[derive(Debug, Serialize)]
struct ScenarioReport {
    name: String,
    virtual_seconds: f64,
    runs: u64,
    wall_seconds_per_run: f64,
    events_per_run: u64,
    events_per_sec: f64,
    delivered_messages: u64,
    events_per_delivered_message: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    epm_gate: f64,
    scenarios: Vec<ScenarioReport>,
}

/// The one golden-fixture field the `--check` gate needs (the shim's
/// derive skips the unknown keys of the full `ScenarioResult` dump).
#[derive(Debug, Deserialize)]
struct GoldenEvents {
    events_processed: u64,
}

/// `events_processed` from `tests/golden/<name>.json`. `Ok(None)` means
/// the fixture file is absent (e.g. the bin runs outside the workspace
/// root) — the count gate is skipped with a notice while the EPM gate
/// still applies. A fixture that exists but fails to parse is an `Err`:
/// under `--check` that is a gate failure, never a silent skip.
fn golden_events(name: &str) -> Result<Option<u64>, String> {
    let text = match std::fs::read_to_string(format!("tests/golden/{name}.json")) {
        Ok(text) => text,
        Err(_) => return Ok(None),
    };
    let golden: GoldenEvents = serde_json::from_str(&text)
        .map_err(|e| format!("golden fixture tests/golden/{name}.json unparseable: {e:?}"))?;
    Ok(Some(golden.events_processed))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());

    let mut scenarios = Vec::new();
    let mut gate_failures = Vec::new();
    for (name, cfg) in golden_trio() {
        let mut runs = 0u64;
        let mut last = None;
        let start = Instant::now();
        while runs == 0 || start.elapsed().as_secs_f64() < MIN_WALL_SECS {
            let mut scenario = Scenario::build(cfg);
            scenario.run();
            last = Some(scenario);
            runs += 1;
        }
        // Collection (which clones every recorded series) happens once,
        // outside the timed region: the wall figure is build + run only.
        let wall = start.elapsed().as_secs_f64() / runs as f64;
        let mut scenario = last.expect("at least one run");
        let result = scenario.collect();
        let epm = result
            .events_per_delivered_message()
            .expect("trio delivers messages");
        let report = ScenarioReport {
            name: name.to_string(),
            virtual_seconds: result.duration,
            runs,
            wall_seconds_per_run: wall,
            events_per_run: result.events_processed,
            events_per_sec: result.events_processed as f64 / wall,
            delivered_messages: result.messages_delivered,
            events_per_delivered_message: epm,
        };
        println!(
            "{:>6}: {:>8} events in {:>8.4} s/run ({:>9.0} events/s), \
             events/delivered-msg {:.4}",
            name, report.events_per_run, wall, report.events_per_sec, epm
        );
        if epm > EPM_GATE {
            gate_failures.push(format!("{name}: {epm:.4} > {EPM_GATE}"));
        }
        if check {
            // Structural dispatch gate: the refactored engine must process
            // exactly the event count the pre-refactor fixture recorded.
            match golden_events(name) {
                Ok(Some(golden)) if golden != result.events_processed => {
                    gate_failures.push(format!(
                        "{name}: events_processed {} != golden fixture {golden}",
                        result.events_processed
                    ));
                }
                Ok(Some(_)) => {}
                Ok(None) => println!(
                    "  (no golden fixture for {name} here; skipping the \
                     events_processed gate)"
                ),
                Err(e) => gate_failures.push(e),
            }
        }
        scenarios.push(report);
    }

    let report = Report {
        epm_gate: EPM_GATE,
        scenarios,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("write report");
    println!("report -> {out_path}");

    if check && !gate_failures.is_empty() {
        eprintln!("perf structural gates failed:");
        for f in &gate_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
