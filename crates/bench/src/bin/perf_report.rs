//! Serial hot-path performance report for the engine fast paths
//! (single-hop delivery, typed actor dispatch, inline timer slots,
//! calendar event queue): events/sec, events-per-delivered-message, and
//! wall time for the standard SAPP/DCPP/churn trio (`golden_trio`, the
//! same configurations the golden-equivalence suite pins) at CI horizons.
//!
//! * `perf_report [out.json]` — run the trio plus a sharded-UDP loopback
//!   throughput probe (the serving runtime under a real kernel socket
//!   path), print the table, write the report (default
//!   `BENCH_PR10.json`).
//! * `perf_report --regions` — additionally run the multi-core scaling
//!   suite: the decomposed (one-network-plane-per-region) trio at
//!   regions ∈ {1, 2, 4, 8} with workers matched to regions, under both
//!   window policies, recording wall-clock curves, barrier/window
//!   counters, and the adaptive-vs-static window ratio; with `--mega`
//!   also the `mega-1m` sharded engine at shards ∈ {1, 2, 4, 8}. Each
//!   point records its region plan (planned lookahead, or the collapsing
//!   route when the partition is refused).
//! * `perf_report --mega` — additionally run the `mega-1m` catalog
//!   scenario (10⁶ devices / 10⁴ CPs on the calendar queue with streaming
//!   recorders) once and record its throughput in the report.
//! * `perf_report --check` — additionally exit non-zero if any scenario
//!   breaks a structural gate: events-per-delivered-message above 2.05,
//!   `events_processed` differing from the golden fixture recorded in
//!   `tests/golden/` (dispatch refactors must not change event counts),
//!   a trio scenario whose regions=2 result is not byte-identical to its
//!   regions=1 result (the conservative-window engine must never perturb
//!   a trajectory), a decomposed trio scenario whose adaptive-window run
//!   is not byte-identical to its static-window run (or executes *more*
//!   windows than static), or trio throughput collapsing below half of
//!   the committed `BENCH_PR8.json` snapshot (the one wall-clock gate;
//!   halved to absorb CI box noise while still catching
//!   order-of-magnitude regressions).

use presence_core::{CpId, DcppConfig, DcppCp, DcppDevice, DeviceId};
use presence_des::{SimDuration, SimTime, WindowPolicy};
use presence_runtime::{shards_from_env, Clock, DeviceHost, HostConfig, ShardedHost, SystemClock};
use presence_sim::{
    golden_trio, mega_catalog, region_count, run_mega_sharded, run_mega_spec, DecomposedScenario,
    MegaResult, Scenario,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Events-per-delivered-message ceiling: 2 exact for the single-hop path,
/// plus 2.5 % headroom for dropped and still-in-flight messages.
const EPM_GATE: f64 = 2.05;

/// Repeat each scenario until the accumulated wall time passes this, so
/// the events/sec figure is not a single-run noise sample.
const MIN_WALL_SECS: f64 = 0.25;

/// `--check` fails if a trio scenario's events/sec drops below this
/// fraction of its `BENCH_PR8.json` snapshot.
const THROUGHPUT_GATE_FRACTION: f64 = 0.5;

/// The committed throughput snapshot the `--check` floor reads.
const BASELINE_FILE: &str = "BENCH_PR8.json";

/// The region/shard counts the `--regions` scaling suite sweeps.
const SCALING_POINTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Debug, Serialize)]
struct ScenarioReport {
    name: String,
    virtual_seconds: f64,
    runs: u64,
    wall_seconds_per_run: f64,
    events_per_run: u64,
    events_per_sec: f64,
    delivered_messages: u64,
    events_per_delivered_message: f64,
    /// The region plan the run executed under: requested regions,
    /// effective regions, and the planner's reason.
    region_plan: String,
}

#[derive(Debug, Serialize)]
struct MegaReport {
    name: String,
    wall_seconds: f64,
    events_per_sec: f64,
    result: MegaResult,
}

/// One point on a decomposed-trio scaling curve: the adaptive-policy run
/// is the recorded datum; the static-policy run of the same configuration
/// supplies the window-count denominator.
#[derive(Debug, Serialize)]
struct TrioScalingPoint {
    name: String,
    regions: usize,
    workers: usize,
    /// The planner's verdict for this point: effective regions plus the
    /// planned lookahead, or the collapsing route when it refuses.
    region_plan: String,
    wall_seconds: f64,
    events_per_sec: f64,
    /// Cross-plane `Relay`/`RelayBroadcast` forwards (the decomposition's
    /// extra hops; 0 would mean the cut carries no traffic).
    relays_forwarded: u64,
    /// Windows executed under the adaptive policy (summed over regions).
    windows_executed: u64,
    /// Cross-region events exchanged at barriers (adaptive run).
    barrier_exchanges: u64,
    /// Mean events per window (adaptive run).
    events_per_window: f64,
    /// Windows the *static* policy executed on the same configuration.
    static_windows_executed: u64,
    /// `windows_executed / static_windows_executed` — below 1.0 means the
    /// adaptive policy widened windows and barriered less.
    adaptive_window_ratio: f64,
}

/// One point on the `mega-1m` sharded scaling curve.
#[derive(Debug, Serialize)]
struct MegaScalingPoint {
    name: String,
    shards: usize,
    workers: usize,
    wall_seconds: f64,
    events_processed: u64,
    events_per_sec: f64,
}

/// The `--regions` scaling suite: wall-clock curves over region/shard
/// counts, with the barrier/window counters that explain them.
#[derive(Debug, Serialize)]
struct ScalingReport {
    points: Vec<usize>,
    trio: Vec<TrioScalingPoint>,
    mega: Vec<MegaScalingPoint>,
}

/// Throughput of the sharded UDP serving runtime on loopback: real
/// sockets, real kernel, wall clock.
#[derive(Debug, Serialize)]
struct UdpLoopbackReport {
    /// Shards per host (`RUNTIME_SHARDS`, or parallelism-derived).
    shards: usize,
    /// DCPP device/CP pairs served.
    pairs: u32,
    wall_seconds: f64,
    probes_sent: u64,
    probes_answered: u64,
    /// Datagrams put on the wire by both hosts together.
    datagrams: u64,
    datagrams_per_sec: f64,
    /// Backpressure drops reported by the host counters (gated to 0).
    backpressure_dropped: u64,
}

#[derive(Debug, Serialize)]
struct Report {
    epm_gate: f64,
    /// `PRESENCE_REGIONS` the report ran under (1 unless set in the env).
    regions: usize,
    scenarios: Vec<ScenarioReport>,
    udp_loopback: UdpLoopbackReport,
    mega: Option<MegaReport>,
    /// Present when `--regions` ran the scaling suite.
    scaling: Option<ScalingReport>,
}

/// The one golden-fixture field the `--check` gate needs (the shim's
/// derive skips the unknown keys of the full `ScenarioResult` dump).
#[derive(Debug, Deserialize)]
struct GoldenEvents {
    events_processed: u64,
}

/// The baseline fields the throughput gate reads from [`BASELINE_FILE`].
#[derive(Debug, Deserialize)]
struct BaselineScenario {
    name: String,
    events_per_sec: f64,
}

#[derive(Debug, Deserialize)]
struct BaselineReport {
    scenarios: Vec<BaselineScenario>,
}

/// `events_processed` from `tests/golden/<name>.json`. `Ok(None)` means
/// the fixture file is absent (e.g. the bin runs outside the workspace
/// root) — the count gate is skipped with a notice while the EPM gate
/// still applies. A fixture that exists but fails to parse is an `Err`:
/// under `--check` that is a gate failure, never a silent skip.
fn golden_events(name: &str) -> Result<Option<u64>, String> {
    let text = match std::fs::read_to_string(format!("tests/golden/{name}.json")) {
        Ok(text) => text,
        Err(_) => return Ok(None),
    };
    let golden: GoldenEvents = serde_json::from_str(&text)
        .map_err(|e| format!("golden fixture tests/golden/{name}.json unparseable: {e:?}"))?;
    Ok(Some(golden.events_processed))
}

/// The committed [`BASELINE_FILE`] throughput snapshot; same absence
/// semantics as [`golden_events`].
fn baseline_events_per_sec(name: &str) -> Result<Option<f64>, String> {
    let text = match std::fs::read_to_string(BASELINE_FILE) {
        Ok(text) => text,
        Err(_) => return Ok(None),
    };
    let baseline: BaselineReport = serde_json::from_str(&text)
        .map_err(|e| format!("baseline {BASELINE_FILE} unparseable: {e:?}"))?;
    Ok(baseline
        .scenarios
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.events_per_sec))
}

/// Runs one trio scenario under the given `PRESENCE_REGIONS` setting and
/// returns the serialised `ScenarioResult` — the byte string the
/// region-equivalence gate compares. The caller restores the variable.
fn result_bytes_at_regions(cfg: presence_sim::ScenarioConfig, regions: &str) -> String {
    std::env::set_var("PRESENCE_REGIONS", regions);
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    serde_json::to_string(&scenario.collect()).expect("result serialises")
}

/// The `--check` region-equivalence gate: every trio scenario must
/// produce byte-identical results at `PRESENCE_REGIONS=1` and `=2`. The
/// trio collapses to one effective region either way, so this pins the
/// *plan consultation itself* as trajectory-neutral.
fn check_region_equivalence(gate_failures: &mut Vec<String>) {
    let previous = std::env::var("PRESENCE_REGIONS").ok();
    for (name, cfg) in golden_trio() {
        let one = result_bytes_at_regions(cfg, "1");
        let two = result_bytes_at_regions(cfg, "2");
        if one == two {
            println!("  {name}: regions=2 byte-identical to regions=1");
        } else {
            gate_failures.push(format!("{name}: regions=2 result diverges from regions=1"));
        }
    }
    match previous {
        Some(v) => std::env::set_var("PRESENCE_REGIONS", v),
        None => std::env::remove_var("PRESENCE_REGIONS"),
    }
}

/// Measures the sharded UDP host on loopback: a fleet of DCPP pairs with
/// tightened waits, real sockets, wall clock. The datagram rate is the
/// end-to-end serving throughput (probe out, reply back, both counted);
/// under `--check` any backpressure drop fails the gate.
fn run_udp_loopback(gate_failures: &mut Vec<String>, check: bool) -> UdpLoopbackReport {
    let shards = shards_from_env();
    let pairs: u32 = 256;
    let mut cfg = DcppConfig::paper_default();
    cfg.delta_min = SimDuration::from_millis(2);
    cfg.d_min = SimDuration::from_millis(10);
    let host_cfg = HostConfig {
        shards,
        bind: "127.0.0.1:0".to_string(),
        recv_batch: 64,
        poll_interval: Duration::from_millis(1),
    };
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let mut devices = ShardedHost::bind(&host_cfg).expect("bind device host");
    for d in 0..pairs {
        devices.add_device(DeviceHost::Dcpp(DcppDevice::new(DeviceId(d), cfg)), None);
    }
    let mut cps = ShardedHost::bind(&host_cfg).expect("bind cp host");
    let stagger = cfg.d_min.as_nanos() / u64::from(pairs);
    for d in 0..pairs {
        cps.add_prober(
            Box::new(DcppCp::new(CpId(d), cfg)),
            devices.addr_of(DeviceId(d)),
            DeviceId(d),
            SimTime::ZERO + SimDuration::from_nanos(u64::from(d) * stagger),
        );
    }
    let start = Instant::now();
    let device_handle = devices.start(Arc::clone(&clock));
    let cp_handle = cps.start(Arc::clone(&clock));
    std::thread::sleep(Duration::from_secs(1));
    let cp_report = cp_handle.join();
    // Let in-flight probes drain before counting the device side.
    std::thread::sleep(Duration::from_millis(50));
    let device_report = device_handle.join();
    let wall = start.elapsed().as_secs_f64();

    let probes_sent: u64 = cp_report.probers.iter().map(|p| p.stats.probes_sent).sum();
    let probes_answered: u64 = device_report
        .devices
        .iter()
        .map(|d| d.probes_received)
        .sum();
    let datagrams = cp_report.stats.datagrams_sent + device_report.stats.datagrams_sent;
    let dropped = cp_report.stats.dropped() + device_report.stats.dropped();
    let report = UdpLoopbackReport {
        shards,
        pairs,
        wall_seconds: wall,
        probes_sent,
        probes_answered,
        datagrams,
        datagrams_per_sec: datagrams as f64 / wall,
        backpressure_dropped: dropped,
    };
    println!(
        "udp-loopback: {pairs} DCPP pairs x{shards} shard(s): {datagrams} datagrams \
         in {wall:.2} s ({:.0} datagrams/s), {dropped} backpressure drops",
        report.datagrams_per_sec
    );
    if check && dropped != 0 {
        gate_failures.push(format!(
            "udp-loopback: {dropped} backpressure drops (counters must read zero)"
        ));
    }
    report
}

fn run_mega() -> MegaReport {
    let spec = mega_catalog()
        .into_iter()
        .find(|s| s.name == "mega-1m")
        .expect("mega-1m catalog entry");
    println!(
        "mega-1m: {} devices / {} CPs on the calendar queue…",
        spec.config.devices, spec.config.cps
    );
    let start = Instant::now();
    let result = run_mega_spec(&spec);
    let wall = start.elapsed().as_secs_f64();
    let report = MegaReport {
        name: spec.name,
        wall_seconds: wall,
        events_per_sec: result.events_processed as f64 / wall,
        result,
    };
    println!(
        "mega-1m: {:>9} events in {:>7.2} s ({:>9.0} events/s), \
         {} cycles, wait mean {:.3} s, {:.2} probes/s/device",
        report.result.events_processed,
        wall,
        report.events_per_sec,
        report.result.cycles_succeeded,
        report.result.wait_mean,
        report.result.load_mean_per_device,
    );
    report
}

/// Runs one decomposed trio configuration and returns the scenario plus
/// its wall time (build + run, collection excluded — same protocol as the
/// serial table).
fn run_decomposed(
    cfg: presence_sim::ScenarioConfig,
    regions: usize,
    policy: WindowPolicy,
) -> (DecomposedScenario, f64) {
    let start = Instant::now();
    let mut scenario = DecomposedScenario::build(cfg, regions);
    scenario.set_workers(regions);
    scenario.set_window_policy(policy);
    scenario.run();
    (scenario, start.elapsed().as_secs_f64())
}

/// The decomposed-trio half of the scaling suite: every preset at every
/// region count, adaptive policy timed and recorded, static policy run
/// once more for the window-ratio denominator.
fn run_trio_scaling(gate_failures: &mut Vec<String>) -> Vec<TrioScalingPoint> {
    let mut points = Vec::new();
    for (name, cfg) in golden_trio() {
        for regions in SCALING_POINTS {
            let (mut scenario, wall) = run_decomposed(cfg, regions, WindowPolicy::Adaptive);
            let plan = scenario.region_plan();
            let plan_line = format!(
                "requested {} -> effective {} ({})",
                plan.requested, plan.effective, plan.reason
            );
            let events = scenario.collect().events_processed;
            let (windows, exchanges, per_window) =
                scenario.region_counters().unwrap_or((0, 0, 0.0));
            let (static_run, _) = run_decomposed(cfg, regions, WindowPolicy::Static);
            let static_windows = static_run.region_counters().map_or(0, |(w, _, _)| w);
            if windows > static_windows {
                gate_failures.push(format!(
                    "{name} regions={regions}: adaptive executed {windows} windows, \
                     static only {static_windows}"
                ));
            }
            let ratio = if static_windows == 0 {
                1.0
            } else {
                windows as f64 / static_windows as f64
            };
            let point = TrioScalingPoint {
                name: name.to_string(),
                regions,
                workers: regions,
                region_plan: plan_line,
                wall_seconds: wall,
                events_per_sec: events as f64 / wall,
                relays_forwarded: scenario.relays_forwarded(),
                windows_executed: windows,
                barrier_exchanges: exchanges,
                events_per_window: per_window,
                static_windows_executed: static_windows,
                adaptive_window_ratio: ratio,
            };
            println!(
                "{:>6} x{}: {:>8.4} s ({:>9.0} events/s), {} windows \
                 (static {}, ratio {:.3}), {} barrier events — {}",
                name,
                regions,
                wall,
                point.events_per_sec,
                windows,
                static_windows,
                ratio,
                exchanges,
                point.region_plan
            );
            points.push(point);
        }
    }
    points
}

/// The `mega-1m` half of the scaling suite: the sharded engine at each
/// shard count with workers matched.
fn run_mega_scaling() -> Vec<MegaScalingPoint> {
    let spec = mega_catalog()
        .into_iter()
        .find(|s| s.name == "mega-1m")
        .expect("mega-1m catalog entry");
    let mut points = Vec::new();
    for shards in SCALING_POINTS {
        let start = Instant::now();
        let results = run_mega_sharded(&spec.config, shards, shards);
        let wall = start.elapsed().as_secs_f64();
        let events: u64 = results.iter().map(|r| r.events_processed).sum();
        let point = MegaScalingPoint {
            name: spec.name.clone(),
            shards,
            workers: shards,
            wall_seconds: wall,
            events_processed: events,
            events_per_sec: events as f64 / wall,
        };
        println!(
            "mega-1m x{shards}: {:>9} events in {:>7.2} s ({:>9.0} events/s)",
            events, wall, point.events_per_sec
        );
        points.push(point);
    }
    points
}

/// The `--check` adaptive-equivalence gate: on the decomposed trio at
/// four regions, the adaptive-window run must be byte-identical to the
/// static-window run (wider windows must never reorder a trajectory) and
/// must not barrier more often.
fn check_adaptive_equivalence(gate_failures: &mut Vec<String>) {
    for (name, cfg) in golden_trio() {
        let (mut adaptive, _) = run_decomposed(cfg, 4, WindowPolicy::Adaptive);
        let (mut static_run, _) = run_decomposed(cfg, 4, WindowPolicy::Static);
        let a = serde_json::to_string(&adaptive.collect()).expect("result serialises");
        let s = serde_json::to_string(&static_run.collect()).expect("result serialises");
        let a_windows = adaptive.region_counters().map_or(0, |(w, _, _)| w);
        let s_windows = static_run.region_counters().map_or(0, |(w, _, _)| w);
        if a == s && a_windows <= s_windows {
            println!(
                "  {name}: adaptive byte-identical to static \
                 ({a_windows} windows vs {s_windows})"
            );
        } else if a != s {
            gate_failures.push(format!(
                "{name}: decomposed adaptive result diverges from static at regions=4"
            ));
        } else {
            gate_failures.push(format!(
                "{name}: adaptive executed {a_windows} windows, static only {s_windows}"
            ));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut mega = false;
    let mut scaling = false;
    let mut out_path: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--check" => check = true,
            "--mega" => mega = true,
            "--regions" => scaling = true,
            other if other.starts_with("--") => {
                panic!(
                    "unknown flag {other} (perf_report [--check] [--mega] [--regions] [out.json])"
                )
            }
            other => out_path = Some(other.to_string()),
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let regions = region_count();

    let mut scenarios = Vec::new();
    let mut gate_failures = Vec::new();
    for (name, cfg) in golden_trio() {
        // Surface the region plan once, outside the timed region: the
        // trio is hub-coupled, so any multi-region request collapses.
        let plan = Scenario::build(cfg).region_plan();
        let plan_line = format!(
            "requested {} -> effective {} ({})",
            plan.requested, plan.effective, plan.reason
        );
        if regions > 1 {
            println!("{name:>6}: regions {plan_line}");
        }
        let mut runs = 0u64;
        let mut last = None;
        // Each repeat is timed individually and the throughput figure
        // comes from the *fastest* one: scheduler contention on a shared
        // CI box only ever slows a run down, so the minimum wall time is
        // the low-variance estimator of what the code can actually do —
        // means drift with box load and trip the gate spuriously.
        let mut best_wall = f64::INFINITY;
        let start = Instant::now();
        while runs == 0 || start.elapsed().as_secs_f64() < MIN_WALL_SECS {
            let run_start = Instant::now();
            let mut scenario = Scenario::build(cfg);
            scenario.run();
            best_wall = best_wall.min(run_start.elapsed().as_secs_f64());
            last = Some(scenario);
            runs += 1;
        }
        // Collection (which clones every recorded series) happens once,
        // outside the timed region: the wall figure is build + run only.
        let mut scenario = last.expect("at least one run");
        let result = scenario.collect();
        let epm = result
            .events_per_delivered_message()
            .expect("trio delivers messages");
        let report = ScenarioReport {
            name: name.to_string(),
            virtual_seconds: result.duration,
            runs,
            wall_seconds_per_run: best_wall,
            events_per_run: result.events_processed,
            events_per_sec: result.events_processed as f64 / best_wall,
            delivered_messages: result.messages_delivered,
            events_per_delivered_message: epm,
            region_plan: plan_line,
        };
        println!(
            "{:>6}: {:>8} events in {:>8.4} s/run best-of-{runs} \
             ({:>9.0} events/s), events/delivered-msg {:.4}",
            name, report.events_per_run, best_wall, report.events_per_sec, epm
        );
        if epm > EPM_GATE {
            gate_failures.push(format!("{name}: {epm:.4} > {EPM_GATE}"));
        }
        if check {
            // Structural dispatch gate: the refactored engine must process
            // exactly the event count the pre-refactor fixture recorded.
            match golden_events(name) {
                Ok(Some(golden)) if golden != result.events_processed => {
                    gate_failures.push(format!(
                        "{name}: events_processed {} != golden fixture {golden}",
                        result.events_processed
                    ));
                }
                Ok(Some(_)) => {}
                Ok(None) => println!(
                    "  (no golden fixture for {name} here; skipping the \
                     events_processed gate)"
                ),
                Err(e) => gate_failures.push(e),
            }
            // Throughput floor against the committed PR6 snapshot.
            match baseline_events_per_sec(name) {
                Ok(Some(baseline)) => {
                    let floor = baseline * THROUGHPUT_GATE_FRACTION;
                    if report.events_per_sec < floor {
                        gate_failures.push(format!(
                            "{name}: {:.0} events/s below {:.0} \
                             ({THROUGHPUT_GATE_FRACTION} x {BASELINE_FILE} snapshot {baseline:.0})",
                            report.events_per_sec, floor
                        ));
                    }
                }
                Ok(None) => {
                    println!("  (no {BASELINE_FILE} here; skipping the throughput gate for {name})")
                }
                Err(e) => gate_failures.push(e),
            }
        }
        scenarios.push(report);
    }

    let udp_loopback = run_udp_loopback(&mut gate_failures, check);

    if check {
        println!("region-equivalence gate (regions=2 vs regions=1):");
        check_region_equivalence(&mut gate_failures);
        println!("adaptive-window gate (decomposed trio, adaptive vs static at regions=4):");
        check_adaptive_equivalence(&mut gate_failures);
    }

    let scaling_report = if scaling {
        println!(
            "scaling suite: decomposed trio at regions {SCALING_POINTS:?} \
             (workers matched), adaptive + static"
        );
        let trio = run_trio_scaling(&mut gate_failures);
        let mega_points = if mega { run_mega_scaling() } else { Vec::new() };
        Some(ScalingReport {
            points: SCALING_POINTS.to_vec(),
            trio,
            mega: mega_points,
        })
    } else {
        None
    };

    let mega_report = if mega && !scaling {
        Some(run_mega())
    } else {
        None
    };

    let report = Report {
        epm_gate: EPM_GATE,
        regions,
        scenarios,
        udp_loopback,
        mega: mega_report,
        scaling: scaling_report,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("write report");
    println!("report -> {out_path}");

    if check && !gate_failures.is_empty() {
        eprintln!("perf structural gates failed:");
        for f in &gate_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
