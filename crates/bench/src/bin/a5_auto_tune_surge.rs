//! A5 — device-side Δ auto-tuner under a population surge (extension).

use presence_bench::{emit, parse_args};
use presence_sim::experiments::a5_auto_tune_surge;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(3_000.0);
    let report = a5_auto_tune_surge(duration, opts.seed);
    emit(&report, &opts);
}
