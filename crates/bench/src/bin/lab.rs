//! The scenario-lab runner: load a declarative catalog scenario, fan
//! replications across the worker pool, and print per-regime-sliced
//! metrics.
//!
//! ```text
//! lab --list                         # show the catalog
//! lab mixed-regime-stress            # run one entry (3 seeds by default)
//! lab catalog/flash-crowd.json       # …or any spec file by path
//! lab --all                          # run every catalog entry
//! lab --check                        # CI gate: validate every file, pin
//!                                    # them to the built-ins, smoke-run
//!                                    # the mixed-regime scenario
//! lab --emit-catalog catalog         # (re)generate the shipped files
//! ```
//!
//! Options: `--seeds 1,2,3` (explicit seeds), `--replications N` (seeds
//! 1..=N), `--jobs N` (worker pool width, default `PRESENCE_JOBS` /
//! machine parallelism), `--regions N` (run each scenario on the
//! decomposed one-network-plane-per-region topology across N regions
//! with N workers, printing the per-scenario region plan — planned
//! lookahead, or the collapsing route — and the barrier/window counters;
//! the trajectories are byte-identical to the sequential decomposed run,
//! pinned by `tests/region_equivalence.rs`), `--json PATH` (write the
//! full `LabReport`, or the decomposed report — region plan, per-seed
//! window/barrier/relay/unroutable counters — under `--regions`),
//! `--catalog DIR` (default: the repository's `catalog/`).
//!
//! Tracing: `--trace PATH` re-runs the first seed with presence tracing
//! armed and writes a Chrome JSON trace that Perfetto's viewer loads
//! directly — one track per actor, probe→reply flow arrows, counter
//! tracks for load/frequency/fabric occupancy. `--trace-until SECS` caps
//! the traced horizon (the run still completes; only the buffers stop),
//! `--trace-engine` adds the dense engine stream (dispatch spans, timer
//! arm/cancel/fire). Works on the hub topology and under `--regions N`
//! (where the exported trace is byte-identical to the sequential one —
//! pinned by `tests/trace_export.rs`). Inspect traces offline with the
//! `spotter` bin.
//!
//! Reports are **byte-identical at any `--jobs` value** — replications
//! merge in seed order before any cross-seed folding (pinned by
//! `tests/determinism.rs`).

use presence_sim::{
    builtin_catalog, job_count, mega_catalog, run_lab, LabReport, MegaSpec, ScenarioSpec,
};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// What `--trace PATH [--trace-until SECS] [--trace-engine]` asked for.
struct TraceRequest {
    path: PathBuf,
    until: Option<f64>,
    engine: bool,
}

/// Runs the first seed once more with tracing armed and writes the
/// Chrome JSON trace. A dedicated run keeps the report path untouched:
/// the replications the report aggregates stay untraced (and unperturbed
/// — tracing does not change trajectories, but it does cost memory).
fn export_trace(
    spec: &ScenarioSpec,
    seed: u64,
    regions: Option<usize>,
    request: &TraceRequest,
) -> Result<(), String> {
    let mut seeded = spec.clone();
    seeded.seed = seed;
    let err = |e: presence_sim::SpecError| format!("{}: {e}", spec.name);
    let model = match regions {
        Some(n) => {
            let mut scenario = seeded.build_decomposed(n).map_err(err)?;
            scenario.set_workers(n);
            scenario.enable_trace(request.until, request.engine);
            scenario.run();
            let result = scenario.collect();
            scenario.collect_trace(&result)
        }
        None => {
            let mut scenario = seeded.build().map_err(err)?;
            scenario.enable_trace(request.until, request.engine);
            scenario.run();
            let result = scenario.collect();
            scenario.collect_trace(&result)
        }
    };
    let json = presence_trace::write_chrome_json(&model);
    std::fs::write(&request.path, &json)
        .map_err(|e| format!("write {}: {e}", request.path.display()))?;
    println!(
        "trace -> {} (seed {seed}, {} tracks, {} flow/instant points, {} counters, {} bytes)",
        request.path.display(),
        model.tracks.len(),
        model.points.len(),
        model.counters.len(),
        json.len()
    );
    Ok(())
}

fn default_catalog_dir() -> PathBuf {
    // crates/bench/../../catalog — the repository's shipped catalog.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../catalog")
}

fn load_catalog_dir(dir: &Path) -> Result<Vec<(PathBuf, ScenarioSpec)>, String> {
    let mut entries = Vec::new();
    let listing = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read catalog dir {}: {e}", dir.display()))?;
    for entry in listing {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") {
            entries.push(path);
        }
    }
    entries.sort();
    let mut specs = Vec::new();
    for path in entries {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let spec =
            ScenarioSpec::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        if stem != spec.name {
            return Err(format!(
                "{}: file stem does not match spec name {:?}",
                path.display(),
                spec.name
            ));
        }
        specs.push((path, spec));
    }
    if specs.is_empty() {
        return Err(format!(
            "catalog dir {} holds no .json specs",
            dir.display()
        ));
    }
    Ok(specs)
}

fn fmt_opt(v: Option<f64>, width: usize, precision: usize) -> String {
    match v {
        Some(v) => format!("{v:>width$.precision$}"),
        None => format!("{:>width$}", "—"),
    }
}

fn print_report(report: &LabReport) {
    println!(
        "\n=== {} · seeds {:?} · {} regime window(s) ===",
        report.name,
        report.seeds,
        report.windows.len()
    );
    // "detΣ": verdict counts are totals across all seeds; the other
    // columns are cross-seed means.
    println!(
        "{:>12} {:>12} | {:>9} {:>9} {:>9} {:>6} {:>9}",
        "from (s)", "to (s)", "load/s", "jain", "popul.", "detΣ", "lat. (s)"
    );
    for s in &report.slices {
        println!(
            "{:>12.1} {:>12.1} | {} {} {} {:>6} {}",
            s.start,
            s.end,
            fmt_opt(s.load_mean, 9, 2),
            fmt_opt(s.fairness_jain, 9, 3),
            fmt_opt(s.population_mean, 9, 1),
            s.detections,
            fmt_opt(s.detection_latency_mean, 9, 3),
        );
    }
    let events: u64 = report.per_seed.iter().map(|s| s.events_processed).sum();
    let delivered: u64 = report.per_seed.iter().map(|s| s.messages_delivered).sum();
    let lost: u64 = report
        .per_seed
        .iter()
        .map(|s| s.messages_dropped_loss)
        .sum();
    println!(
        "totals over {} seed(s): {events} events, {delivered} delivered, {lost} lost to the loss regime",
        report.per_seed.len()
    );
}

fn run_one(
    spec: &ScenarioSpec,
    seeds: &[u64],
    jobs: usize,
    json_out: Option<&Path>,
    trace: Option<&TraceRequest>,
) -> Result<(), String> {
    let report = run_lab(spec, seeds, jobs).map_err(|e| format!("{}: {e}", spec.name))?;
    print_report(&report);
    if let Some(path) = json_out {
        let text = serde_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("report -> {}", path.display());
    }
    if let Some(request) = trace {
        export_trace(spec, seeds[0], None, request)?;
    }
    Ok(())
}

/// One seed of the `--regions` path, as `--json` reports it: the
/// parallel-engine counters (window/barrier) next to the fabric's
/// relay/unroutable tallies.
#[derive(Debug, Serialize)]
struct DecomposedSeedReport {
    seed: u64,
    events_processed: u64,
    windows_executed: u64,
    barrier_exchanges: u64,
    events_per_window: f64,
    cross_plane_relays: u64,
    messages_delivered: u64,
    messages_unroutable: u64,
}

/// The `--regions … --json` envelope: region plan plus per-seed counters.
#[derive(Debug, Serialize)]
struct DecomposedLabReport {
    name: String,
    regions: usize,
    plan_requested: usize,
    plan_effective: usize,
    plan_reason: String,
    per_seed: Vec<DecomposedSeedReport>,
}

/// The `--regions N` path: run each seed on the decomposed
/// (one-network-plane-per-region) topology, print the region plan once
/// and the barrier/window counters per seed. Trajectories are
/// byte-identical to the hub-free sequential reference at any region
/// count, so the numbers of interest here are the parallel-engine
/// counters, not the metrics.
fn run_one_decomposed(
    spec: &ScenarioSpec,
    seeds: &[u64],
    regions: usize,
    json_out: Option<&Path>,
    trace: Option<&TraceRequest>,
) -> Result<(), String> {
    println!("\n=== {} · decomposed @ {regions} region(s) ===", spec.name);
    let mut report = DecomposedLabReport {
        name: spec.name.clone(),
        regions,
        plan_requested: regions,
        plan_effective: 1,
        plan_reason: String::new(),
        per_seed: Vec::with_capacity(seeds.len()),
    };
    for (i, &seed) in seeds.iter().enumerate() {
        let mut seeded = spec.clone();
        seeded.seed = seed;
        let mut scenario = seeded
            .build_decomposed(regions)
            .map_err(|e| format!("{}: {e}", spec.name))?;
        scenario.set_workers(regions);
        let plan = scenario.region_plan();
        if i == 0 {
            println!(
                "plan: requested {} -> effective {} ({})",
                plan.requested, plan.effective, plan.reason
            );
            report.plan_requested = plan.requested;
            report.plan_effective = plan.effective;
            report.plan_reason = plan.reason.clone();
        }
        scenario.run();
        let result = scenario.collect();
        let (windows, exchanges, per_window) = scenario.region_counters().unwrap_or((0, 0, 0.0));
        match scenario.region_counters() {
            Some(_) => println!(
                "seed {seed}: {} events in {windows} windows ({per_window:.1} events/window), \
                 {exchanges} barrier events, {} cross-plane relays",
                result.events_processed,
                scenario.relays_forwarded()
            ),
            None => println!(
                "seed {seed}: {} events on the sequential engine, {} cross-plane relays",
                result.events_processed,
                scenario.relays_forwarded()
            ),
        }
        report.per_seed.push(DecomposedSeedReport {
            seed,
            events_processed: result.events_processed,
            windows_executed: windows,
            barrier_exchanges: exchanges,
            events_per_window: per_window,
            cross_plane_relays: scenario.relays_forwarded(),
            messages_delivered: result.messages_delivered,
            messages_unroutable: result.messages_unroutable,
        });
    }
    if let Some(path) = json_out {
        let text = serde_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("report -> {}", path.display());
    }
    if let Some(request) = trace {
        export_trace(spec, seeds[0], Some(regions), request)?;
    }
    Ok(())
}

/// Loads the shipped `catalog/mega/` definitions (absence of the subdir is
/// an empty catalog, reported by the caller).
fn load_mega_dir(dir: &Path) -> Result<Vec<(PathBuf, MegaSpec)>, String> {
    let mega_dir = dir.join("mega");
    if !mega_dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&mega_dir)
        .map_err(|e| format!("cannot read {}: {e}", mega_dir.display()))?
        .map(|e| e.map(|e| e.path()).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    paths.retain(|p| p.extension().and_then(|e| e.to_str()) == Some("json"));
    paths.sort();
    let mut specs = Vec::new();
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let spec: MegaSpec =
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        if stem != spec.name {
            return Err(format!(
                "{}: file stem does not match spec name {:?}",
                path.display(),
                spec.name
            ));
        }
        specs.push((path, spec));
    }
    Ok(specs)
}

/// The CI gate: every shipped file parses, validates, matches its
/// built-in definition, and the mixed-regime acceptance scenario runs
/// with per-regime slices under 2 seeds.
fn check(dir: &Path, jobs: usize) -> Result<(), String> {
    let files = load_catalog_dir(dir)?;
    let builtins = builtin_catalog();
    if files.len() != builtins.len() {
        return Err(format!(
            "catalog drift: {} files on disk, {} built-in definitions",
            files.len(),
            builtins.len()
        ));
    }
    for (path, spec) in &files {
        let builtin = builtins
            .iter()
            .find(|b| b.name == spec.name)
            .ok_or_else(|| format!("{}: no built-in definition", path.display()))?;
        if builtin != spec {
            return Err(format!(
                "{}: drifted from the built-in definition (regenerate with --emit-catalog)",
                path.display()
            ));
        }
        println!("ok  {}", path.display());
    }
    let mixed = files
        .iter()
        .map(|(_, s)| s)
        .find(|s| s.name == "mixed-regime-stress")
        .ok_or("catalog is missing the mixed-regime-stress acceptance scenario")?;
    let report = run_lab(mixed, &[1, 2], jobs).map_err(|e| e.to_string())?;
    if report.slices.len() < 3 {
        return Err(format!(
            "mixed-regime smoke produced only {} regime slices",
            report.slices.len()
        ));
    }
    if !report.slices.iter().all(|s| s.load_mean.is_some()) {
        return Err("mixed-regime smoke left a regime window without load samples".into());
    }
    println!(
        "ok  mixed-regime smoke: {} windows, {} events",
        report.slices.len(),
        report
            .per_seed
            .iter()
            .map(|s| s.events_processed)
            .sum::<u64>()
    );
    let mega_files = load_mega_dir(dir)?;
    let mega_builtins = mega_catalog();
    if mega_files.len() != mega_builtins.len() {
        return Err(format!(
            "mega catalog drift: {} files on disk, {} built-in definitions",
            mega_files.len(),
            mega_builtins.len()
        ));
    }
    for (path, spec) in &mega_files {
        let builtin = mega_builtins
            .iter()
            .find(|b| b.name == spec.name)
            .ok_or_else(|| format!("{}: no built-in mega definition", path.display()))?;
        if builtin != spec {
            return Err(format!(
                "{}: drifted from the built-in definition (regenerate with --emit-catalog)",
                path.display()
            ));
        }
        spec.config.validate();
        println!("ok  {}", path.display());
    }
    Ok(())
}

fn emit_catalog(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    for spec in builtin_catalog() {
        spec.validate().map_err(|e| format!("{}: {e}", spec.name))?;
        let path = dir.join(format!("{}.json", spec.name));
        std::fs::write(&path, spec.to_json() + "\n")
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    let mega_dir = dir.join("mega");
    std::fs::create_dir_all(&mega_dir).map_err(|e| format!("mkdir {}: {e}", mega_dir.display()))?;
    for spec in mega_catalog() {
        spec.config.validate();
        let path = mega_dir.join(format!("{}.json", spec.name));
        let text = serde_json::to_string_pretty(&spec).expect("mega spec serialises");
        std::fs::write(&path, text + "\n").map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut catalog_dir = default_catalog_dir();
    let mut jobs = job_count();
    let mut seeds: Vec<u64> = vec![1, 2, 3];
    let mut json_out: Option<PathBuf> = None;
    let mut list = false;
    let mut all = false;
    let mut do_check = false;
    let mut emit: Option<PathBuf> = None;
    let mut target: Option<String> = None;
    let mut regions: Option<usize> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut trace_until: Option<f64> = None;
    let mut trace_engine = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| it.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match arg.as_str() {
            "--list" => list = true,
            "--all" => all = true,
            "--check" => do_check = true,
            "--emit-catalog" => emit = Some(PathBuf::from(value("--emit-catalog"))),
            "--catalog" => catalog_dir = PathBuf::from(value("--catalog")),
            "--jobs" => jobs = value("--jobs").parse().expect("--jobs N"),
            "--regions" => {
                let n: usize = value("--regions")
                    .parse()
                    .expect("--regions N (a positive integer)");
                assert!(n >= 1, "--regions must be at least 1");
                regions = Some(n);
            }
            "--json" => json_out = Some(PathBuf::from(value("--json"))),
            "--trace" => trace_path = Some(PathBuf::from(value("--trace"))),
            "--trace-until" => {
                let secs: f64 = value("--trace-until")
                    .parse()
                    .expect("--trace-until SECS (virtual seconds)");
                assert!(secs > 0.0, "--trace-until must be positive");
                trace_until = Some(secs);
            }
            "--trace-engine" => trace_engine = true,
            "--seeds" => {
                seeds = value("--seeds")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--seeds a,b,c"))
                    .collect();
            }
            "--replications" => {
                let n: u64 = value("--replications").parse().expect("--replications N");
                assert!(n > 0, "--replications must be positive");
                seeds = (1..=n).collect();
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => target = Some(other.to_string()),
        }
    }

    let trace = trace_path.map(|path| TraceRequest {
        path,
        until: trace_until,
        engine: trace_engine,
    });

    let outcome = (|| -> Result<(), String> {
        if trace.is_some() && (all || do_check || list || emit.is_some()) {
            return Err("--trace needs a single scenario target".into());
        }
        if let Some(dir) = emit {
            return emit_catalog(&dir);
        }
        if do_check {
            return check(&catalog_dir, jobs);
        }
        if list {
            for (path, spec) in load_catalog_dir(&catalog_dir)? {
                println!(
                    "{:<22} {:>6.0} s  {}",
                    spec.name, spec.duration, spec.description
                );
                let _ = path;
            }
            for (_, spec) in load_mega_dir(&catalog_dir)? {
                println!(
                    "{:<22} {:>6.0} s  {} (mega: run via perf_report --mega / mega_smoke)",
                    spec.name, spec.config.duration, spec.description
                );
            }
            return Ok(());
        }
        if all {
            for (_, spec) in load_catalog_dir(&catalog_dir)? {
                match regions {
                    Some(n) => run_one_decomposed(&spec, &seeds, n, None, None)?,
                    None => run_one(&spec, &seeds, jobs, None, None)?,
                }
            }
            return Ok(());
        }
        let Some(target) = target else {
            return Err(
                "usage: lab [--list | --all | --check | --emit-catalog DIR | <name|spec.json>] \
                 [--seeds a,b,c | --replications N] [--jobs N] [--regions N] [--json PATH] \
                 [--trace PATH [--trace-until SECS] [--trace-engine]] [--catalog DIR]"
                    .into(),
            );
        };
        // A path to a spec file, or a catalog entry name.
        let spec = if target.ends_with(".json") {
            let text = std::fs::read_to_string(&target).map_err(|e| format!("{target}: {e}"))?;
            ScenarioSpec::from_json(&text).map_err(|e| format!("{target}: {e}"))?
        } else {
            load_catalog_dir(&catalog_dir)?
                .into_iter()
                .map(|(_, s)| s)
                .find(|s| s.name == target)
                .ok_or_else(|| format!("no catalog entry named {target:?} (try --list)"))?
        };
        match regions {
            Some(n) => run_one_decomposed(&spec, &seeds, n, json_out.as_deref(), trace.as_ref()),
            None => run_one(&spec, &seeds, jobs, json_out.as_deref(), trace.as_ref()),
        }
    })();

    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lab: {e}");
            ExitCode::FAILURE
        }
    }
}
