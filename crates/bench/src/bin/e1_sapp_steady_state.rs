//! E1 — §3 steady-state study of SAPP (see `presence-sim`'s experiment
//! docs for the paper mapping).
//!
//! The headline numbers come from one long batch-means run (the paper's
//! methodology). In text mode the bin also prints an independent-
//! replications cross-check of the same configuration — four extra seeds
//! fanned out across `--jobs N` workers — since batch means within one run
//! is only trustworthy when it agrees with genuinely independent runs.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::e1_sapp_steady_state;
use presence_sim::{replicate_with_jobs, Protocol, ScenarioConfig};

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(20_000.0);
    let report = e1_sapp_steady_state(duration, opts.seed);
    emit(&report, &opts);

    if !opts.json {
        let jobs = opts.resolved_jobs();
        let seeds: Vec<u64> = (1..=4).map(|i| opts.seed.wrapping_add(i)).collect();
        let check_duration = duration.min(5_000.0);
        let base =
            ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 20, check_duration, opts.seed);
        let summary = replicate_with_jobs(&base, &seeds, 0.95, jobs);
        println!(
            "cross-check: independent replications ({} seeds × {check_duration:.0} s)",
            seeds.len()
        );
        print!("{summary}");
    }
}
