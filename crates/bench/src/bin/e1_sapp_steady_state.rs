//! E1 — §3 steady-state study of SAPP (see `presence-sim`'s experiment
//! docs for the paper mapping).

use presence_bench::{emit, parse_args};
use presence_sim::experiments::e1_sapp_steady_state;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(20_000.0);
    let report = e1_sapp_steady_state(duration, opts.seed);
    emit(&report, &opts);
}
