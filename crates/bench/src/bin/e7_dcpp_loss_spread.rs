//! E7 — §5 conjecture: packet loss spreads DCPP's join spikes.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::e7_dcpp_loss_spread;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(3_000.0);
    let report = e7_dcpp_loss_spread(duration, opts.seed);
    emit(&report, &opts);
}
