//! A6 — leave-notice dissemination over the SAPP overlay (extension).

use presence_bench::{emit, parse_args};
use presence_sim::experiments::a6_dissemination;

fn main() {
    let opts = parse_args();
    let crash_at = opts.duration.unwrap_or(2_000.0);
    let report = a6_dissemination(20, crash_at, opts.seed);
    emit(&report, &opts);
}
