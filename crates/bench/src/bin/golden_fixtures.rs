//! Regenerates the golden-trajectory fixtures under `tests/golden/`.
//!
//! Each fixture is the full `ScenarioResult` JSON of one `golden_trio()`
//! scenario. The golden-equivalence test (`tests/golden_equivalence.rs`)
//! deserialises only the trajectory metrics (everything except
//! `events_processed`), so hot-path refactors that legitimately change the
//! event count do **not** require re-pinning — only changes that alter the
//! simulated trajectory itself do, and those must be called out in the PR
//! that regenerates the fixtures.
//!
//! Usage: `cargo run --release -p presence-bench --bin golden_fixtures`
//! (writes into `tests/golden/` relative to the workspace root).

use presence_sim::{golden_trio, Scenario};
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("tests/golden"), PathBuf::from);
    std::fs::create_dir_all(&out_dir).expect("create fixture directory");
    for (name, cfg) in golden_trio() {
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let result = scenario.collect();
        let json = serde_json::to_string_pretty(&result).expect("result serialises");
        let path = out_dir.join(format!("{name}.json"));
        std::fs::write(&path, json).expect("write fixture");
        println!(
            "{}: {} events, {} probes -> {}",
            name,
            result.events_processed,
            result.device_probes,
            path.display()
        );
    }
}
