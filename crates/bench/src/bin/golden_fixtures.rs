//! Regenerates the golden-trajectory fixtures under `tests/golden/`.
//!
//! Each fixture is the full `ScenarioResult` JSON of one pinned scenario:
//! the three `golden_trio()` presets plus the `mixed-regime-stress` lab
//! spec (a regime-switching churn trajectory that exercises the
//! `Scheduled` network models, the `RegimeActor`, and every churn
//! generator — the coverage the paper trio lacks).
//!
//! The golden-equivalence test (`tests/golden_equivalence.rs`) asserts
//! **every** metric, `events_processed` included: since the PR 5 typed
//! dispatch rewrite, engine refactors are expected to preserve event
//! counts exactly, so a changed count is a changed trajectory. A PR that
//! legitimately changes counts (a new event-collapsing fast path) must
//! regenerate the fixtures and say so.
//!
//! Usage: `cargo run --release -p presence-bench --bin golden_fixtures`
//! (writes into `tests/golden/` relative to the workspace root).

use presence_sim::{
    builtin_catalog, golden_trio, run_spec_once, DecomposedScenario, Scenario, ScenarioResult,
};
use std::path::PathBuf;

/// The lab spec pinned alongside the trio: regime switches in all three
/// timelines (delay, loss, churn), shared with the shipped catalog.
const LAB_FIXTURE_SPEC: &str = "mixed-regime-stress";

/// The scenario pinned as a Chrome JSON trace fixture
/// (`trace-paper-dcpp.json`) — the paper-default DCPP catalog entry.
const TRACE_FIXTURE_SPEC: &str = "paper-dcpp";

/// Horizon cap (virtual seconds) of the trace fixture: long enough for
/// several probe cycles per CP, short enough to keep the fixture small.
const TRACE_FIXTURE_UNTIL: f64 = 10.0;

fn write_fixture(out_dir: &std::path::Path, name: &str, result: &ScenarioResult) {
    let json = serde_json::to_string_pretty(result).expect("result serialises");
    let path = out_dir.join(format!("{name}.json"));
    std::fs::write(&path, json).expect("write fixture");
    println!(
        "{}: {} events, {} probes -> {}",
        name,
        result.events_processed,
        result.device_probes,
        path.display()
    );
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("tests/golden"), PathBuf::from);
    std::fs::create_dir_all(&out_dir).expect("create fixture directory");
    for (name, cfg) in golden_trio() {
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        write_fixture(&out_dir, name, &scenario.collect());
        // The same preset on the decomposed (multi-plane) topology,
        // recorded from the sequential reference engine (regions = 1);
        // the regioned engine must replay these bit-for-bit.
        let mut decomposed = DecomposedScenario::build(cfg, 1);
        decomposed.run();
        write_fixture(
            &out_dir,
            &format!("decomposed-{name}"),
            &decomposed.collect(),
        );
    }
    let spec = builtin_catalog()
        .into_iter()
        .find(|s| s.name == LAB_FIXTURE_SPEC)
        .expect("lab fixture spec is in the builtin catalog");
    let result = run_spec_once(&spec).expect("lab fixture spec runs");
    write_fixture(&out_dir, "lab-mixed", &result);
    let mut decomposed_lab = spec.build_decomposed(1).expect("lab fixture spec builds");
    decomposed_lab.run();
    write_fixture(&out_dir, "decomposed-lab-mixed", &decomposed_lab.collect());

    // The Chrome JSON trace fixture: the full export pipeline on the
    // paper-default DCPP entry, horizon-capped, pinned byte-for-byte by
    // `tests/trace_export.rs`. A legitimate format change (new track,
    // renamed counter, different float rendering) must regenerate this
    // and say so.
    let trace_spec = builtin_catalog()
        .into_iter()
        .find(|s| s.name == TRACE_FIXTURE_SPEC)
        .expect("trace fixture spec is in the builtin catalog");
    let mut traced = trace_spec.build().expect("trace fixture spec builds");
    traced.enable_trace(Some(TRACE_FIXTURE_UNTIL), false);
    traced.run();
    let result = traced.collect();
    let json = presence_trace::write_chrome_json(&traced.collect_trace(&result));
    let path = out_dir.join(format!("trace-{TRACE_FIXTURE_SPEC}.json"));
    std::fs::write(&path, &json).expect("write trace fixture");
    println!(
        "trace-{TRACE_FIXTURE_SPEC}: {} bytes (first {TRACE_FIXTURE_UNTIL} s) -> {}",
        json.len(),
        path.display()
    );
}
