//! A3 — naive fixed-rate probing vs SAPP vs DCPP device load.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::a3_fixed_rate_baseline;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(1_000.0);
    let report = a3_fixed_rate_baseline(&[1, 2, 5, 10, 20, 40, 60], duration, opts.seed);
    emit(&report, &opts);
}
