//! A8 — false absence verdicts under loss, measured vs the closed form.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::a8_false_positives;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(5_000.0);
    let report = a8_false_positives(20, duration, opts.seed);
    emit(&report, &opts);
}
