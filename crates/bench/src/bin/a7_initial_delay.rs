//! A7 — SAPP's sensitivity to its (unstated) initial probing delay.

use presence_bench::{emit, parse_args};
use presence_sim::experiments::a7_initial_delay;

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(20_000.0);
    let report = a7_initial_delay(20, duration, opts.seed);
    emit(&report, &opts);
}
