//! Cross-seed replication study: the headline metrics (device load,
//! fairness, frequency spread) for SAPP and DCPP with Student-t confidence
//! intervals over independent seeds — the methodological upgrade over any
//! single run's numbers.

use presence_bench::parse_args;
use presence_sim::{replicate, Protocol, ScenarioConfig};

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(5_000.0);
    let seeds: Vec<u64> = (1..=10)
        .map(|i| opts.seed.wrapping_mul(31).wrapping_add(i))
        .collect();

    for (name, protocol) in [
        ("SAPP", Protocol::sapp_paper()),
        ("DCPP", Protocol::dcpp_paper()),
    ] {
        let base = ScenarioConfig::paper_defaults(protocol, 20, duration, 0);
        let summary = replicate(&base, &seeds, 0.95);
        println!("{name} (k = 20, {duration:.0} s, {} seeds)", seeds.len());
        println!("{summary}");
    }
}
