//! Cross-seed replication study: the headline metrics (device load,
//! fairness, frequency spread) for SAPP and DCPP with Student-t confidence
//! intervals over independent seeds — the methodological upgrade over any
//! single run's numbers.
//!
//! Seeds fan out across `--jobs N` worker threads (default `PRESENCE_JOBS`
//! / machine parallelism); the summary is bit-identical at any worker
//! count, so `--jobs` trades only wall-clock, never results.

use presence_bench::parse_args;
use presence_sim::{replicate_with_jobs, Protocol, ScenarioConfig};

fn main() {
    let opts = parse_args();
    let duration = opts.duration.unwrap_or(5_000.0);
    let jobs = opts.resolved_jobs();
    let seeds: Vec<u64> = (1..=10)
        .map(|i| opts.seed.wrapping_mul(31).wrapping_add(i))
        .collect();

    for (name, protocol) in [
        ("SAPP", Protocol::sapp_paper()),
        ("DCPP", Protocol::dcpp_paper()),
    ] {
        let base = ScenarioConfig::paper_defaults(protocol, 20, duration, 0);
        // The output deliberately omits the worker count: it is
        // byte-identical at any `--jobs` value, and keeping it so makes
        // that trivially checkable with `diff`.
        let summary = replicate_with_jobs(&base, &seeds, 0.95, jobs);
        println!("{name} (k = 20, {duration:.0} s, {} seeds)", seeds.len());
        println!("{summary}");
    }
}
