//! Shared plumbing for the experiment binaries.
//!
//! Every `e*`/`a*` binary accepts the same optional flags:
//!
//! ```text
//! --seed <u64>        root seed (default 3)
//! --duration <secs>   virtual run length where applicable
//! --jobs <n>          worker threads for replication/sweep bins
//!                     (default: PRESENCE_JOBS, else machine parallelism)
//! --json              emit the report as JSON instead of text
//! --csv               emit the figure's data series as CSV (figure bins)
//! ```

use std::env;

/// Parsed common command-line options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Options {
    /// Root seed for the run.
    pub seed: u64,
    /// Virtual duration override, if given.
    pub duration: Option<f64>,
    /// Worker-thread override (`--jobs N`), if given.
    pub jobs: Option<usize>,
    /// Emit JSON.
    pub json: bool,
    /// Emit CSV series.
    pub csv: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            seed: 3,
            duration: None,
            jobs: None,
            json: false,
            csv: false,
        }
    }
}

impl Options {
    /// Worker count for replication/sweep bins: the `--jobs` flag if given,
    /// otherwise `PRESENCE_JOBS` / machine parallelism (see
    /// [`presence_sim::parallel::job_count`]). The results are
    /// bit-identical at any value — only wall-clock changes.
    #[must_use]
    pub fn resolved_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(presence_sim::job_count)
    }
}

/// Parses `std::env::args`. Unknown flags abort with a usage message.
#[must_use]
pub fn parse_args() -> Options {
    parse_from(env::args().skip(1))
}

/// Parses an explicit argument list (testable core of [`parse_args`]).
///
/// # Panics
///
/// Panics on malformed or unknown arguments, printing usage — acceptable
/// for experiment binaries whose only user is the harness.
#[must_use]
pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Options {
    let mut opts = Options::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                let v = iter.next().expect("--seed needs a value");
                opts.seed = v.parse().expect("--seed must be a u64");
            }
            "--duration" => {
                let v = iter.next().expect("--duration needs a value");
                opts.duration = Some(v.parse().expect("--duration must be a number"));
            }
            "--jobs" => {
                let v = iter.next().expect("--jobs needs a value");
                let jobs: usize = v.parse().expect("--jobs must be a positive integer");
                assert!(jobs > 0, "--jobs must be a positive integer");
                opts.jobs = Some(jobs);
            }
            "--json" => opts.json = true,
            "--csv" => opts.csv = true,
            other => {
                panic!(
                    "unknown argument {other}; supported: --seed N --duration SECS --jobs N \
                     --json --csv"
                )
            }
        }
    }
    opts
}

/// Prints a report either as text (`Display`) or JSON (`Serialize`).
pub fn emit<R: std::fmt::Display + serde::Serialize>(report: &R, opts: &Options) {
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(report).expect("report serialises")
        );
    } else {
        println!("{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = parse_from(args(&[]));
        assert_eq!(o, Options::default());
    }

    #[test]
    fn full_parse() {
        let o = parse_from(args(&[
            "--seed",
            "42",
            "--duration",
            "123.5",
            "--jobs",
            "4",
            "--json",
            "--csv",
        ]));
        assert_eq!(o.seed, 42);
        assert_eq!(o.duration, Some(123.5));
        assert_eq!(o.jobs, Some(4));
        assert_eq!(o.resolved_jobs(), 4);
        assert!(o.json && o.csv);
    }

    #[test]
    fn unset_jobs_resolve_to_at_least_one_worker() {
        assert!(Options::default().resolved_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn zero_jobs_rejected() {
        let _ = parse_from(args(&["--jobs", "0"]));
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        let _ = parse_from(args(&["--frobnicate"]));
    }

    #[test]
    #[should_panic(expected = "--seed needs a value")]
    fn missing_value_panics() {
        let _ = parse_from(args(&["--seed"]));
    }
}
