//! SAPP vs DCPP, head to head — the paper's headline result as one run.
//!
//! Both protocols monitor the same device with the same population under
//! the same seed. SAPP (the UPnP-extension proposal the paper analyses)
//! ends up with wildly unequal per-CP probe frequencies; DCPP (the paper's
//! contribution) gives everyone the same share while pinning the device
//! load at its budget. Run with:
//!
//! ```text
//! cargo run --release --example fairness_showdown
//! ```

use presence::sim::{ascii_chart, Protocol, Scenario, ScenarioConfig, ScenarioResult};

fn run(protocol: Protocol, label: &str, seconds: f64) -> ScenarioResult {
    let cfg = ScenarioConfig::paper_defaults(protocol, 20, seconds, 7);
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let result = scenario.collect();
    println!("== {label}");
    println!(
        "   device load     {:.2} probes/s (budget L_nom = 10)",
        result.load_mean
    );
    println!(
        "   fairness (Jain) {:.3}   (1.000 = perfectly fair)",
        result.fairness_jain
    );
    println!(
        "   freq spread     {:.1}× between fastest and slowest CP",
        result.frequency_spread()
    );
    let mut delays = result.sorted_mean_delays();
    delays.reverse();
    println!(
        "   per-CP mean delay (s, desc): {}",
        delays
            .iter()
            .map(|d| format!("{d:.2}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!();
    result
}

fn main() {
    // 20 000 virtual seconds — the paper's transient horizon. Use
    // --release; debug builds take a few minutes here.
    let seconds = 20_000.0;
    println!("SAPP vs DCPP — 20 CPs, one device, {seconds:.0} virtual seconds, same seed\n");

    let sapp = run(
        Protocol::sapp_paper(),
        "SAPP (self-adaptive, analysed in §2–3)",
        seconds,
    );
    let dcpp = run(
        Protocol::dcpp_paper(),
        "DCPP (device-controlled, the paper's fix)",
        seconds,
    );

    // Show one starved SAPP CP against the same CP under DCPP.
    let starved = sapp
        .active_cps()
        .into_iter()
        .min_by(|a, b| {
            a.mean_frequency
                .partial_cmp(&b.mean_frequency)
                .expect("finite")
        })
        .expect("at least one active CP");
    println!(
        "{}",
        ascii_chart(
            &format!(
                "SAPP's slowest CP (cp{:02}) — probe frequency over time",
                starved.id.0
            ),
            &starved.frequency_series,
            72,
            10,
        )
    );

    assert!(
        dcpp.fairness_jain > sapp.fairness_jain,
        "DCPP must beat SAPP on fairness"
    );
    println!(
        "Verdict: DCPP fairness {:.3} ≫ SAPP fairness {:.3} — the paper's conclusion holds.",
        dcpp.fairness_jain, sapp.fairness_jain
    );
}
