//! The paper's steady-state methodology, end to end: batch means with a
//! relative-confidence-interval stopping rule driving a live simulation.
//!
//! Instead of simulating a fixed horizon and hoping it was long enough,
//! this example extends the run in slices until the batch-means estimator
//! declares the device-load estimate converged at the paper's setting
//! (confidence interval 0.1 at level 0.95) — exactly how the MÖBIUS
//! steady-state solver drove the authors' study. Run with:
//!
//! ```text
//! cargo run --release --example steady_state_analysis
//! ```

use presence::sim::{Protocol, Scenario, ScenarioConfig};
use presence::stats::{BatchMeans, BatchMeansConfig, SteadyStateVerdict};

fn main() {
    let cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 20, f64::MAX, 3);
    // `duration` above is unused: we drive the clock ourselves in slices.
    let mut scenario = Scenario::build(ScenarioConfig {
        duration: 1e9, // effectively unbounded; run_until controls time
        load_window: 5.0,
        ..cfg
    });

    let bm_cfg = BatchMeansConfig {
        warmup: 20,     // discard 100 s of 5 s windows (join transient)
        batch_size: 20, // 100 s per batch
        min_batches: 10,
        level: 0.95,
        target_relative_half_width: 0.1, // the paper's "CI 0.1"
    };
    let mut estimator = BatchMeans::new(bm_cfg).expect("valid config");

    println!("SAPP k = 20 — device load, batch means @ CI 0.1 / 0.95\n");
    println!(
        "{:>10} {:>9} {:>12} {:>16}",
        "sim time", "batches", "estimate", "rel. half-width"
    );

    let slice = 500.0; // virtual seconds per extension
    let mut t = 0.0;
    let mut consumed = 0usize;
    loop {
        t += slice;
        scenario.run_until(t);
        // Feed only the windows the estimator has not seen yet.
        let result = scenario.collect();
        for &(_, rate) in result.load_series.iter().skip(consumed) {
            estimator.push(rate);
        }
        consumed = result.load_series.len();

        let ci = estimator.interval();
        println!(
            "{:>9.0}s {:>9} {:>9.3}/s {:>15.3}%",
            t,
            estimator.batches(),
            estimator.mean(),
            ci.relative_half_width() * 100.0
        );

        match estimator.verdict() {
            SteadyStateVerdict::Converged => break,
            _ if t > 100_000.0 => {
                println!("giving up after 100k virtual seconds");
                break;
            }
            _ => {}
        }
    }

    let ci = estimator.interval();
    println!(
        "\nconverged: device load = {:.2} ± {:.2} probes/s after {:.0} virtual seconds",
        ci.mean, ci.half_width, t
    );
    println!(
        "(paper: load near L_nom = 10; the dead band [L_nom/β, β·L_nom] admits {:.1}…{:.1})",
        10.0 / 1.5,
        10.0 * 1.5
    );
    assert!(ci.mean > 10.0 / 1.5 - 1.0 && ci.mean < 10.0 * 1.5 + 1.0);
}
