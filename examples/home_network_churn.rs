//! A UPnP-style home network under churn — the scenario the paper's
//! introduction motivates.
//!
//! A media device joins a home network; control points (TVs, phones,
//! tablets, remotes) come and go in bursts as people move around the
//! house. DCPP keeps the device's probe load capped while everyone still
//! detects its (eventual) departure within a second. Run with:
//!
//! ```text
//! cargo run --release --example home_network_churn
//! ```

use presence::sim::{ascii_chart, ChurnModel, Protocol, Scenario, ScenarioConfig};

fn main() {
    // Up to 60 control points with the paper's Figure 5 churn: the
    // population is redrawn from U{1..60} roughly every 20 s.
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 60, 1_800.0, 2026);
    cfg.initially_active = 12;
    cfg.churn = ChurnModel::paper_fig5();
    cfg.load_window = 2.0;
    // Home Wi-Fi: a bit of bursty loss.
    cfg.loss = presence::sim::LossKind::Bursty(0.02);

    let mut scenario = Scenario::build(cfg);
    // After half an hour the device powers off gracefully (sends Bye).
    scenario.device_bye_at(1_700.0);
    scenario.run();
    let result = scenario.collect();

    println!("home network churn — DCPP, ≤60 CPs, bursty 2% loss, 30 virtual minutes\n");
    println!(
        "{}",
        ascii_chart("device load (probes/s)", &result.load_series, 72, 12)
    );
    println!(
        "{}",
        ascii_chart("#control points present", &result.population_series, 72, 10)
    );

    println!(
        "mean load {:.2} probes/s (budget 10), variance {:.1}",
        result.load_mean, result.load_variance
    );
    let informed = result
        .cps
        .iter()
        .filter(|c| c.detected_absent_at.is_some())
        .count();
    println!(
        "{informed} control points learned of the device's goodbye (those present at t = 1700 s)"
    );

    let retx: u64 = result.cps.iter().map(|c| c.retransmissions).sum();
    let cycles: u64 = result.cps.iter().map(|c| c.cycles_succeeded).sum();
    println!(
        "loss recovery: {retx} retransmissions across {cycles} successful probe cycles ({:.2}%)",
        100.0 * retx as f64 / cycles.max(1) as f64
    );

    assert!(result.load_mean < 13.0, "device overloaded despite DCPP");
    assert!(informed > 0, "nobody heard the Bye");
    println!("\nDevice stayed within budget through the whole evening. ✓");
}
