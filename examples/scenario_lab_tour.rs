//! Scenario-lab tour: author a time-varying experiment in code, run it
//! across a replication pool, and read the per-regime metric slices.
//!
//! The scenario below starts as a calm paper-default DCPP network, then
//! at t = 120 s a Gilbert–Elliott loss storm rolls in while a flash
//! crowd of control points surges on, and at t = 240 s the storm clears
//! into a diurnal churn pattern. Every regime boundary opens a metric
//! window — the numbers show how detection load and fairness move as
//! conditions change. Run with:
//!
//! ```text
//! cargo run --release --example scenario_lab_tour
//! ```
//!
//! The same experiment, authored as JSON, could ship in `catalog/` and
//! run through `cargo run -p presence-bench --bin lab` — specs
//! round-trip losslessly between the two forms.

use presence::sim::{
    run_lab, ChurnModel, ChurnPhase, LossKind, LossPhase, Protocol, ScenarioConfig, ScenarioSpec,
};

fn main() {
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 24, 360.0, 7);
    cfg.initially_active = 6;
    let mut spec = ScenarioSpec::from_config(
        "lab-tour",
        "calm start, loss storm + flash crowd, diurnal recovery",
        cfg,
    );
    spec.loss = vec![
        LossPhase {
            start: 0.0,
            loss: LossKind::None,
        },
        LossPhase {
            start: 120.0,
            loss: LossKind::Bursty(0.15),
        },
        LossPhase {
            start: 240.0,
            loss: LossKind::None,
        },
    ];
    spec.churn = vec![
        ChurnPhase {
            start: 0.0,
            churn: ChurnModel::Static,
        },
        ChurnPhase {
            start: 120.0,
            churn: ChurnModel::FlashCrowd {
                at: 120.0,
                peak: 24,
                ramp: 20.0,
                hold: 60.0,
            },
        },
        ChurnPhase {
            start: 240.0,
            churn: ChurnModel::Diurnal {
                period: 120.0,
                min: 4,
                max: 20,
                rate: 0.2,
            },
        },
    ];
    spec.validate().expect("spec is well-formed");

    // Five replications across the worker pool (PRESENCE_JOBS honoured);
    // the report is byte-identical at any worker count.
    let report =
        run_lab(&spec, &[1, 2, 3, 4, 5], presence::sim::job_count()).expect("validated spec runs");

    println!("scenario lab tour — {}\n", spec.description);
    println!(
        "{:>8} {:>8} | {:>9} {:>9} {:>9}",
        "from (s)", "to (s)", "load/s", "jain", "popul."
    );
    let fmt = |v: Option<f64>| match v {
        Some(v) => format!("{v:9.2}"),
        None => format!("{:>9}", "—"),
    };
    for slice in &report.slices {
        println!(
            "{:>8.0} {:>8.0} | {} {} {}",
            slice.start,
            slice.end,
            fmt(slice.load_mean),
            fmt(slice.fairness_jain),
            fmt(slice.population_mean),
        );
    }
    let lost: u64 = report
        .per_seed
        .iter()
        .map(|s| s.messages_dropped_loss)
        .sum();
    println!(
        "\nacross {} seeds: {} messages lost to the storm window",
        report.seeds.len(),
        lost
    );
    println!(
        "regime windows come from the union of the loss and churn phase \
         boundaries: {:?}",
        report.windows
    );
}
