//! Live demo: the same protocol machines, on real UDP sockets.
//!
//! Spawns a DCPP device on a loopback UDP socket and three control points
//! probing it from their own sockets and threads — no simulator involved.
//! After two wall-clock seconds the device is shut down and the CPs must
//! detect its absence via probe timeouts. Run with:
//!
//! ```text
//! cargo run --example udp_live_demo
//! ```

use presence::core::{CpId, DcppConfig, DcppCp, DeviceId};
use presence::des::SimDuration;
use presence::runtime::{run_cp, run_device, DeviceHost, StopFlag, SystemClock, UdpTransport};
use std::thread;
use std::time::Duration;

fn main() {
    // Scaled-down timing so the demo finishes in seconds: the device
    // accepts 100 probes/s and asks each CP to wait ≥ 50 ms.
    let mut cfg = DcppConfig::paper_default();
    cfg.delta_min = SimDuration::from_millis(10);
    cfg.d_min = SimDuration::from_millis(50);

    let clock = SystemClock::new();
    let device_stop = StopFlag::new();

    let device_transport = UdpTransport::server("127.0.0.1:0").expect("bind device socket");
    let device_addr = device_transport.local_addr().expect("device addr");
    println!("device listening on {device_addr} (DCPP, L_nom = 100/s, f_max = 20/s)");

    let dev_stop = device_stop.clone();
    let dev_clock = clock.clone();
    let device = thread::spawn(move || {
        run_device(
            DeviceHost::Dcpp(presence::core::DcppDevice::new(DeviceId(0), cfg)),
            device_transport,
            &dev_clock,
            &dev_stop,
        )
    });

    // Three CPs, each on its own socket and thread.
    let cp_stop = StopFlag::new();
    let mut cps = Vec::new();
    for i in 0..3u32 {
        let transport = UdpTransport::client("127.0.0.1:0", device_addr).expect("bind CP socket");
        let prober = DcppCp::new(CpId(i), cfg);
        let stop = cp_stop.clone();
        let cp_clock = clock.clone();
        cps.push(thread::spawn(move || {
            run_cp(prober, transport, &cp_clock, &stop)
        }));
    }

    // Let them probe for two real seconds…
    thread::sleep(Duration::from_secs(2));
    println!("stopping the device (silent crash — no Bye)…");
    device_stop.stop();
    let device = device.join().expect("device thread");

    // …the CPs now run into four straight timeouts and conclude absence.
    let mut detected = 0;
    for (i, cp) in cps.into_iter().enumerate() {
        let outcome = cp.join().expect("cp thread");
        println!(
            "cp{:02}: {} cycles, {} probes, absent verdict: {}",
            i,
            outcome.cycles_succeeded,
            outcome.probes_sent,
            outcome.device_absent_at.map_or("none".into(), |t| format!(
                "{:.3}s on the runtime clock",
                t.as_secs_f64()
            ))
        );
        assert!(
            outcome.cycles_succeeded > 5,
            "cp{i} barely probed; expected dozens of cycles in 2 s"
        );
        if outcome.device_absent_at.is_some() {
            detected += 1;
        }
    }

    println!(
        "device answered {} probes before shutdown; {detected}/3 CPs detected the crash",
        device.probes_received()
    );
    assert_eq!(detected, 3, "all CPs must detect the crash");
    println!("\nSame state machines as the simulator, real sockets, same behaviour. ✓");
}
