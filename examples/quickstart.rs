//! Quickstart: monitor one device with a handful of control points.
//!
//! Runs the paper's protagonist protocol (DCPP) in the deterministic
//! simulator, crashes the device halfway, and shows what every control
//! point observed. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use presence::sim::{kv_table, Protocol, Scenario, ScenarioConfig};

fn main() {
    // One device, five control points, two virtual minutes, fixed seed.
    let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 5, 120.0, 42);
    let mut scenario = Scenario::build(cfg);

    // The device crashes silently (no Bye) at t = 60 s.
    scenario.crash_device_at(60.0);
    scenario.run();
    let result = scenario.collect();

    println!("presence quickstart — DCPP, 5 CPs, device crashes at t = 60 s\n");
    println!(
        "{}",
        kv_table(&[
            (
                "virtual time simulated",
                format!("{:.0} s", result.duration)
            ),
            (
                "probes answered by device",
                result.device_probes.to_string()
            ),
            ("device load (probes/s)", format!("{:.2}", result.load_mean)),
            (
                "fairness (Jain index)",
                format!("{:.3}", result.fairness_jain)
            ),
            (
                "network buffer mean occupancy",
                format!("{:.4}", result.mean_buffer_occupancy.unwrap_or(f64::NAN)),
            ),
        ])
    );

    println!("per-CP view:");
    for cp in result.active_cps() {
        let detected = cp.detected_absent_at.map_or("never".to_string(), |t| {
            format!("{:.3} s (+{:.3} s after crash)", t, t - 60.0)
        });
        println!(
            "  cp{:02}  cycles {:>4}  probes {:>4}  detected absent: {}",
            cp.id.0, cp.cycles_succeeded, cp.probes_sent, detected
        );
    }

    let all_detected = result
        .active_cps()
        .iter()
        .all(|c| c.detected_absent_at.is_some());
    assert!(all_detected, "every CP should have noticed the crash");
    println!("\nAll control points detected the departure. ✓");
}
