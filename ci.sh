#!/usr/bin/env bash
# CI entry point: formatting, lints, then the ROADMAP tier-1 verify line.
#
#   ./ci.sh          full profile
#   ./ci.sh --fast   reduced property-test case counts + CI scenario horizons
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "--fast" ]]; then
    export PROPTEST_CASES="${PROPTEST_CASES:-32}"
    export PRESENCE_TEST_PROFILE="${PRESENCE_TEST_PROFILE:-ci}"
    shift
else
    # The default gate validates the paper-exact horizons; the in-process
    # default (Profile::Ci) is for quick local `cargo test` loops.
    export PRESENCE_TEST_PROFILE="${PRESENCE_TEST_PROFILE:-full}"
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run (criterion harness compile check)"
cargo bench --no-run

# Tier-1 runs with two replication workers so the parallel fan-out path
# (PRESENCE_JOBS → thread::scope pool → seed-ordered merge) is exercised
# by every replication-touching test, not just the dedicated ones — and
# with two requested regions so every scenario-running test consults the
# region planner (the hub scenarios provably collapse to one effective
# region; the golden suites prove the consultation is trajectory-neutral).
export PRESENCE_JOBS="${PRESENCE_JOBS:-2}"
export PRESENCE_REGIONS="${PRESENCE_REGIONS:-2}"

echo "==> tier-1: cargo build --release && cargo test -q (PRESENCE_JOBS=$PRESENCE_JOBS, PRESENCE_REGIONS=$PRESENCE_REGIONS)"
cargo build --release
cargo test -q

# Engine soak: the dispatch/timer machinery PR 5 rewrote gets a deeper
# property-test pass than the tier-1 default (256 cases) — the EventQueue
# and TimerSlots model-based suites plus the dispatch-semantics regression
# battery, at 1024 cases.
echo "==> engine soak: des proptests + dispatch semantics (PROPTEST_CASES=1024)"
PROPTEST_CASES=1024 cargo test --release -q -p presence-des --test proptests --test dispatch

# Region soak: the conservative-window engine's model proptests (random
# token-ring topologies × region counts × worker counts, regioned run
# vs sequential reference, bit-for-bit — including the adaptive-window
# arm, which additionally pins adaptive windows_executed ≤ static) at
# 1024 cases — far beyond the tier-1 default.
echo "==> region soak: regioned engine vs sequential model proptests incl. adaptive windows (PROPTEST_CASES=1024)"
PROPTEST_CASES=1024 cargo test --release -q -p presence-des --test region_model

# Decomposed-topology replay: the golden trio and the mixed-regime lab
# fixtures recorded on the sequential reference engine must replay
# byte-for-byte on the decomposed (one-network-plane-per-region)
# topology — the suite sweeps regions {1, 2, 4} internally and runs here
# under PRESENCE_REGIONS=4 so the surrounding plan consultations see a
# genuine multi-region request too.
echo "==> decomposed replay: golden trio + lab fixtures on the multi-plane topology (PRESENCE_REGIONS=4)"
PRESENCE_REGIONS=4 cargo test --release -q --test region_equivalence

# Structural perf gates: the single-hop delivery path must hold
# events-per-delivered-message at ≤ 2.05, the trio's events_processed
# must equal the golden fixtures exactly (a dispatch or timer refactor
# must not change what gets scheduled), the trio's regions=2 results
# must be byte-identical to regions=1 (the region planner must never
# perturb a trajectory), the decomposed trio's adaptive-window runs must
# be byte-identical to static and never barrier more often, and
# best-of-run trio throughput must stay above half the committed
# BENCH_PR8.json snapshot — the best-of estimator holds steady even on
# the noisy 1-core CI box. --regions also runs the multi-core scaling
# suite (decomposed trio at regions {1,2,4,8}, workers matched) so the
# window/barrier counters it gates on are recorded every CI run. The
# throwaway report path keeps the committed BENCH_PR10.json a recorded
# snapshot rather than overwriting it with this machine's timings.
echo "==> perf gates: events/delivered-msg <= 2.05 + events_processed == golden + regions=2 equivalence + adaptive==static + throughput floor + scaling suite (perf_report --check --regions)"
cargo run --release -q -p presence-bench --bin perf_report -- --check --regions target/perf_report_ci.json

# Conformance stage: the DES is the oracle for the sharded UDP serving
# runtime. The suite drives identical machine populations through the
# discrete-event engine (zero-delay network) and through real loopback
# sockets under a lockstep virtual clock, requiring verdict-for-verdict
# agreement — at one shard and at four, so both the single-socket path
# and the cross-shard routing/demux paths are proven. Then the stress
# gate: the sharded host must sustain 10k devices + 10k probers on the
# wall clock with zero backpressure drops, zero decode errors, zero
# unroutable datagrams, and zero false verdicts.
echo "==> conformance: DES oracle vs UDP runtime at RUNTIME_SHARDS=1 and =4"
RUNTIME_SHARDS=1 cargo test --release -q --test conformance
RUNTIME_SHARDS=4 cargo test --release -q --test conformance
RUNTIME_SHARDS=1 cargo run --release -q -p presence-bench --bin conformance
RUNTIME_SHARDS=4 cargo run --release -q -p presence-bench --bin conformance
echo "==> conformance stress: 10k devices on loopback, zero-drop gate (RUNTIME_SHARDS=4)"
RUNTIME_SHARDS=4 cargo run --release -q -p presence-bench --bin conformance -- --stress 10000

# Mega-scale smoke: the 100k-device calendar-queue + streaming-recorder
# configuration (mega-ci) must finish with sane physics (wait mean at the
# 0.5 s d_min floor, zero failed cycles) inside a bounded peak RSS — the
# flat-memory claim of the streaming recorders, enforced via VmHWM.
echo "==> mega smoke: 100k-device shard, bounded RSS (mega_smoke --budget-mb 512)"
cargo run --release -q -p presence-bench --bin mega_smoke -- --budget-mb 512

# Scenario-lab gate: every shipped catalog file parses, validates, and
# matches its built-in definition, then the mixed-regime acceptance
# scenario (delay + loss + churn all switching mid-run) smoke-runs with
# per-regime metric slices — under the same 2-worker pool as tier-1.
echo "==> scenario lab: catalog validation + mixed-regime smoke (lab --check, PRESENCE_JOBS=$PRESENCE_JOBS)"
cargo run --release -q -p presence-bench --bin lab -- --check

# Trace stage: export a Perfetto trace from the mixed-regime acceptance
# scenario (horizon-capped to keep the buffers CI-sized) and put it
# through the full read-back path — `spotter` parses it, checks every
# structural invariant (named tracks, flow begin ≤ end, counter
# monotonicity), and prints the digest; a malformed trace exits non-zero.
echo "==> trace stage: lab --trace + spotter validation (mixed-regime-stress, first 30 s)"
cargo run --release -q -p presence-bench --bin lab -- \
    mixed-regime-stress --seeds 1 --trace target/trace_ci.json --trace-until 30
cargo run --release -q -p presence-bench --bin spotter -- target/trace_ci.json
rm -f target/trace_ci.json

# Zero-cost-when-off: with tracing disarmed (the default everywhere
# else), the steady-state loop must still allocate nothing and the trio
# must still clear the committed throughput floor — the trace layer may
# only cost when a trace was asked for.
echo "==> tracing-off re-check: alloc steady-state gate + throughput floor"
cargo test --release -q --test alloc_steady_state
cargo run --release -q -p presence-bench --bin perf_report -- --check target/perf_report_traceoff.json

echo "==> ci.sh: all green"
